//! Multi-cluster scale-out: a client-side router partitioning the key
//! space across independent worker-pool clusters.
//!
//! The paper's protocols are per-register: one writer, `S = 2t + b + 1`
//! base objects, `R` readers, and *no* coordination with any other
//! register. That independence is the scale-out lever — aggregate
//! throughput grows by deploying more replica groups on more executors,
//! provided clients can route a key to its group without a central
//! directory. [`StoreRouter`] is that client layer:
//!
//! * **Deterministic routing.** A key hashes to a ring slot with
//!   [`stable_hash_64`](crate::stable_hash_64) (seeded FNV-1a/SplitMix —
//!   never `RandomState`), and
//!   the [`RingTable`] maps slots to shard-clusters through plain atomic
//!   loads. The per-operation routing step is hash + one atomic load: no
//!   global lock, no shared mutable map, and the same key routes to the
//!   same cluster in every process and every replay of the same seed.
//! * **Independent clusters.** Each shard-cluster is a
//!   [`ClusterBackend`] — its own register groups and fault budget
//!   `(t, b)`, whether that is an in-process worker-pool
//!   [`ShardedStore`] or a `RemoteCluster` speaking TCP to a
//!   `vrr-server` in another OS process. A crash or Byzantine object in
//!   one cluster is invisible to every other.
//! * **Live rebalance.** [`StoreRouter::add_cluster`] /
//!   [`StoreRouter::remove_cluster`] move whole ring slots between
//!   clusters while operations keep flowing. A per-slot reader–writer
//!   guard makes each move atomic with respect to the operations of that
//!   slot's keys: clients hold the shared side for the duration of one
//!   operation, a rebalance holds the exclusive side of one slot while it
//!   copies the slot's keys — so the single-writer discipline every
//!   register depends on is preserved, and reads stay regular even with
//!   crash + Byzantine faults live in the source cluster (the copy is
//!   itself a regular `READ` over `2t + b + 1` objects).
//!
//! The capacity contract of [`ShardedStore`] lifts to the router: moving a
//! key *retires* its slot in the source cluster (registers are never
//! recycled across keys), so clusters need capacity headroom proportional
//! to the keys they may receive from rebalances.

use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use vrr_core::metrics::{names, MetricsSink, Registry};
use vrr_core::{ReadReport, StorageConfig, Value, WriteReport};

use crate::backend::ClusterBackend;
use crate::ring::RingTable;
use crate::router::NoDelay;
use crate::shard::{ShardedStore, StoreError};
use crate::storage::ProtocolKind;

/// Sizing and seeding of a [`StoreRouter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterConfig {
    /// Initial number of shard-clusters.
    pub clusters: usize,
    /// Register shards provisioned per cluster ([`ShardedStore`]
    /// capacity). Leave headroom: rebalanced-in keys bind fresh shards.
    pub capacity_per_cluster: usize,
    /// Ring slots (routing granularity). More slots → finer rebalance
    /// steps; each move copies `~keys / slots` keys.
    pub ring_slots: usize,
    /// Routing seed. Everything about key placement is a pure function of
    /// this seed, so replays and cooperating processes agree on routes.
    pub seed: u64,
}

impl RouterConfig {
    /// A config with `clusters` shard-clusters of `capacity_per_cluster`
    /// shards each, 64 ring slots and a fixed default seed.
    pub fn new(clusters: usize, capacity_per_cluster: usize) -> Self {
        RouterConfig {
            clusters,
            capacity_per_cluster,
            ring_slots: 64,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Same config with `seed`.
    pub fn with_seed(self, seed: u64) -> Self {
        RouterConfig { seed, ..self }
    }

    /// Same config with `ring_slots` ring slots.
    pub fn with_ring_slots(self, ring_slots: usize) -> Self {
        RouterConfig { ring_slots, ..self }
    }
}

/// The factory a router keeps so [`StoreRouter::add_cluster`] can deploy
/// new shard-clusters after construction.
type StoreFactory<K, V> = Mutex<Box<dyn FnMut(usize) -> Arc<dyn ClusterBackend<K, V>> + Send>>;

/// Shard-clusters by index; retired slots hold `None` (indices are never
/// reused — the ring stores indices).
type ClusterList<K, V> = Vec<Option<Arc<dyn ClusterBackend<K, V>>>>;

/// A multi-cluster key-value store: deterministic seeded routing over `C`
/// independent [`ClusterBackend`] clusters, with live add/remove
/// rebalance.
///
/// A cluster is anything implementing [`ClusterBackend`]: the in-process
/// worker-pool [`ShardedStore`], or `vrr-net`'s `RemoteCluster` driving a
/// store hosted by a `vrr-server` in another OS process — one seeded ring
/// can span both at once, and the rebalance path (regular-`READ` copy,
/// destination write, source release, ring republish) is identical either
/// way.
///
/// # Examples
///
/// ```
/// use vrr_runtime::{StoreRouter, RouterConfig, ProtocolKind};
/// use vrr_core::StorageConfig;
///
/// let cfg = StorageConfig::optimal(1, 1, 1);
/// let router: StoreRouter<&'static str, u64> = StoreRouter::deploy(
///     cfg,
///     ProtocolKind::RegularOptimized,
///     RouterConfig::new(2, 8),
/// );
/// router.write("alpha", 1);
/// router.write("beta", 2);
/// assert_eq!(router.read(&"alpha", 0).unwrap().value, Some(1));
/// assert_eq!(router.read(&"beta", 0).unwrap().value, Some(2));
/// assert_eq!(router.len(), 2);
/// ```
pub struct StoreRouter<K: Eq + Hash + Clone, V: Value> {
    ring: RingTable,
    /// One reader–writer guard per ring slot: operations hold the shared
    /// side while they run; a rebalance holds the exclusive side of the
    /// slot it is moving. This is what makes a slot move atomic with
    /// respect to the slot's operations without any global lock.
    slot_guards: Vec<RwLock<()>>,
    /// Shard-clusters by index; removed clusters become `None` (indices
    /// are never reused — the ring stores indices). Read-mostly: the hot
    /// path takes the shared side for one `Arc` clone.
    clusters: RwLock<ClusterList<K, V>>,
    factory: StoreFactory<K, V>,
    /// Router-level counters and latency histograms, folded into
    /// [`StoreRouter::metrics_snapshot`].
    ops: Mutex<Registry>,
}

impl<K, V> StoreRouter<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Value,
{
    /// Deploys `rc.clusters` shard-clusters, each a [`ShardedStore`] of
    /// `rc.capacity_per_cluster` register shards running `kind` under
    /// `cfg`, with no artificial link delay.
    ///
    /// # Panics
    ///
    /// Panics if any of `rc.clusters`, `rc.capacity_per_cluster` or
    /// `rc.ring_slots` is zero.
    pub fn deploy(cfg: StorageConfig, kind: ProtocolKind, rc: RouterConfig) -> Self {
        Self::deploy_with_stores(rc, move |_cluster| {
            ShardedStore::deploy(cfg, kind, Box::new(NoDelay), rc.capacity_per_cluster)
        })
    }

    /// Like [`StoreRouter::deploy`], but every shard-cluster is built by
    /// `factory(cluster_index)` — the hook for per-cluster link policies,
    /// history retention, or Byzantine object substitution in fault
    /// drills. The factory is retained and reused by
    /// [`StoreRouter::add_cluster`].
    ///
    /// # Panics
    ///
    /// Panics if `rc.clusters` or `rc.ring_slots` is zero.
    pub fn deploy_with_stores(
        rc: RouterConfig,
        mut factory: impl FnMut(usize) -> ShardedStore<K, V> + Send + 'static,
    ) -> Self {
        Self::deploy_with_backends(rc, move |cluster| {
            Arc::new(factory(cluster)) as Arc<dyn ClusterBackend<K, V>>
        })
    }

    /// The fully general deployment: every cluster is whatever
    /// [`ClusterBackend`] `factory(cluster_index)` returns — in-process
    /// stores, `RemoteCluster`s speaking to other OS processes, or a mix.
    /// The factory is retained and reused by [`StoreRouter::add_cluster`].
    ///
    /// # Panics
    ///
    /// Panics if `rc.clusters` or `rc.ring_slots` is zero.
    pub fn deploy_with_backends(
        rc: RouterConfig,
        mut factory: impl FnMut(usize) -> Arc<dyn ClusterBackend<K, V>> + Send + 'static,
    ) -> Self {
        assert!(rc.clusters > 0, "a router needs at least one cluster");
        let clusters: ClusterList<K, V> = (0..rc.clusters).map(|c| Some(factory(c))).collect();
        StoreRouter {
            ring: RingTable::new(rc.seed, rc.ring_slots, rc.clusters),
            slot_guards: (0..rc.ring_slots).map(|_| RwLock::new(())).collect(),
            clusters: RwLock::new(clusters),
            factory: Mutex::new(Box::new(factory)),
            ops: Mutex::new(Registry::new()),
        }
    }

    /// The routing table (read-only view; useful for assertions about key
    /// placement).
    pub fn ring(&self) -> &RingTable {
        &self.ring
    }

    /// Number of live shard-clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.read().iter().flatten().count()
    }

    /// The live shard-cluster indices, ascending.
    pub fn cluster_ids(&self) -> Vec<usize> {
        self.clusters
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| i))
            .collect()
    }

    /// Keys currently bound, summed over every live cluster.
    pub fn len(&self) -> usize {
        self.clusters.read().iter().flatten().map(|s| s.len()).sum()
    }

    /// Whether no key is currently bound anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(cluster index, bound keys)` for every live cluster, ascending.
    pub fn key_counts(&self) -> Vec<(usize, usize)> {
        self.clusters
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|s| (i, s.len())))
            .collect()
    }

    /// The cluster `key` currently routes to. Lock-free (one hash + one
    /// atomic load) — this *is* the hot-path routing step.
    pub fn cluster_of(&self, key: &K) -> usize {
        self.ring.route(key).1
    }

    /// The live shard-cluster at `index`, if any — the escape hatch for
    /// fault injection and per-cluster inspection in tests. The returned
    /// backend may execute in this process or in another one; callers see
    /// only the [`ClusterBackend`] surface either way.
    pub fn cluster_store(&self, index: usize) -> Option<Arc<dyn ClusterBackend<K, V>>> {
        self.clusters.read().get(index)?.clone()
    }

    fn store(&self, index: usize) -> Arc<dyn ClusterBackend<K, V>> {
        self.clusters.read()[index]
            .as_ref()
            .expect("ring slot routed to a retired cluster")
            .clone()
    }

    /// Blocking `WRITE(key, value)` through the router.
    ///
    /// # Panics
    ///
    /// Panics on [`StoreError::OverCapacity`] in the target cluster, or on
    /// operation timeout. [`StoreRouter::try_write`] is the non-panicking
    /// variant.
    pub fn write(&self, key: K, value: V) -> WriteReport {
        self.try_write(key, value).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Routes `key` to its cluster and writes there, reporting capacity
    /// exhaustion as [`StoreError::OverCapacity`].
    ///
    /// Routing is a seeded hash plus one atomic load; the per-slot guard
    /// taken for the operation's duration is shared (many concurrent
    /// operations per slot), turning exclusive only under a rebalance of
    /// this very slot.
    pub fn try_write(&self, key: K, value: V) -> Result<WriteReport, StoreError> {
        let slot = self.ring.slot_of(&key);
        let _guard = self.slot_guards[slot].read();
        let cluster = self.ring.cluster_of_slot(slot);
        let store = self.store(cluster);
        let started = Instant::now();
        let report = store.try_write(key, value)?;
        self.record_latency(names::ROUTER_WRITE_LATENCY, cluster, started);
        Ok(report)
    }

    /// Blocking `READ(key)` at reader index `j` of the key's shard in the
    /// key's cluster, or `None` if `key` is not bound anywhere.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cfg.readers` of the target cluster, or on operation
    /// timeout.
    pub fn read(&self, key: &K, j: usize) -> Option<ReadReport<V>> {
        let slot = self.ring.slot_of(key);
        let _guard = self.slot_guards[slot].read();
        let cluster = self.ring.cluster_of_slot(slot);
        let store = self.store(cluster);
        let started = Instant::now();
        let report = store.read(key, j)?;
        self.record_latency(names::ROUTER_READ_LATENCY, cluster, started);
        Some(report)
    }

    fn record_latency(&self, name: &'static str, cluster: usize, started: Instant) {
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let label = cluster.to_string();
        self.ops
            .lock()
            .observe(name, &[("cluster", &label)], micros);
    }

    /// Deploys one more shard-cluster (via the retained factory) and
    /// rebalances ring slots onto it until it serves its fair share
    /// (`ring_slots / live clusters`), taking slots from the currently
    /// most-loaded clusters. Returns the new cluster's index.
    ///
    /// Operations keep flowing during the rebalance; only the keys of the
    /// one slot currently being moved block, and only for the duration of
    /// that move.
    pub fn add_cluster(&self) -> usize {
        let index = {
            let mut clusters = self.clusters.write();
            let index = clusters.len();
            let store = (self.factory.lock())(index);
            clusters.push(Some(store));
            index
        };
        let share = self.ring.slot_count() / self.cluster_count();
        while self.ring.slots_of(index).len() < share {
            let donor = self
                .cluster_ids()
                .into_iter()
                .filter(|&c| c != index)
                .max_by_key(|&c| self.ring.slots_of(c).len())
                .expect("at least one donor cluster");
            let Some(&slot) = self.ring.slots_of(donor).first() else {
                break;
            };
            self.move_slot(slot, index);
        }
        index
    }

    /// Drains every ring slot off cluster `index` (round-robin over the
    /// remaining clusters) and retires it. Returns the number of keys
    /// moved. The cluster's worker threads stop when the last `Arc` to its
    /// store drops.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a live cluster or is the only live
    /// cluster.
    pub fn remove_cluster(&self, index: usize) -> usize {
        let targets: Vec<usize> = self
            .cluster_ids()
            .into_iter()
            .filter(|&c| c != index)
            .collect();
        assert!(
            !targets.is_empty(),
            "cannot remove the only live cluster {index}"
        );
        assert!(
            self.cluster_store(index).is_some(),
            "cluster {index} is not live"
        );
        let mut moved = 0;
        for (i, slot) in self.ring.slots_of(index).into_iter().enumerate() {
            moved += self.move_slot(slot, targets[i % targets.len()]);
        }
        self.clusters.write()[index] = None;
        moved
    }

    /// Moves ring slot `slot` to cluster `to`: under the slot's exclusive
    /// guard, reads the latest value of every key of the slot from its
    /// current cluster (a regular `READ`, so correct under the source
    /// cluster's live fault budget), writes it into `to`, releases the
    /// source binding, and repoints the ring. Returns the number of keys
    /// moved.
    ///
    /// Holding the exclusive guard means no client operation on the
    /// slot's keys is in flight, so the copy is the sole writer of those
    /// keys — the SWMR discipline survives the handover.
    fn move_slot(&self, slot: usize, to: usize) -> usize {
        let _guard = self.slot_guards[slot].write();
        let from = self.ring.cluster_of_slot(slot);
        if from == to {
            return 0;
        }
        let src = self.store(from);
        let dst = self.store(to);
        let mut moved = 0u64;
        for key in src.keys() {
            if self.ring.slot_of(&key) != slot {
                continue;
            }
            let latest = src.read(&key, 0).and_then(|r| r.value);
            if let Some(value) = latest {
                dst.write(key.clone(), value);
            }
            src.release(&key);
            moved += 1;
        }
        self.ring.assign(slot, to);
        let mut ops = self.ops.lock();
        ops.counter_add(names::ROUTER_SLOT_MOVES, &[], 1);
        ops.counter_add(names::ROUTER_REBALANCED_KEYS, &[], moved);
        moved as usize
    }

    /// One snapshot of everything observable about the router and its
    /// clusters, in one [`Registry`]: router-level latency histograms and
    /// rebalance counters, per-cluster key/slot gauges
    /// (`vrr_router_keys{cluster=..}` summing to [`StoreRouter::len`]),
    /// and every cluster's own snapshot merged in (history-length gauges
    /// carry a `cluster` label; counters and histograms aggregate across
    /// clusters).
    pub fn metrics_snapshot(&self) -> Registry {
        let mut reg = self.ops.lock().clone();
        let live: Vec<(usize, Arc<dyn ClusterBackend<K, V>>)> = self
            .clusters
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|s| (i, s.clone())))
            .collect();
        for (index, store) in &live {
            reg.merge(&store.metrics_snapshot_labelled(Some(*index)));
            let label = index.to_string();
            reg.gauge_set(
                names::ROUTER_KEYS,
                &[("cluster", &label)],
                store.len() as u64,
            );
            reg.gauge_set(
                names::ROUTER_RING_SLOTS,
                &[("cluster", &label)],
                self.ring.slots_of(*index).len() as u64,
            );
        }
        reg.gauge_set(names::ROUTER_CLUSTERS, &[], live.len() as u64);
        reg
    }
}

impl<K, V> std::fmt::Debug for StoreRouter<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Value,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreRouter")
            .field("clusters", &self.cluster_count())
            .field("ring_slots", &self.ring.slot_count())
            .field("seed", &self.ring.seed())
            .field("keys", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_router(clusters: usize) -> StoreRouter<String, u64> {
        let cfg = StorageConfig::optimal(1, 1, 1);
        StoreRouter::deploy(
            cfg,
            ProtocolKind::Regular,
            RouterConfig::new(clusters, 32).with_ring_slots(16),
        )
    }

    #[test]
    fn routes_and_serves_across_clusters() {
        let router = tiny_router(2);
        for k in 0..10u64 {
            router.write(format!("key-{k}"), k);
        }
        assert_eq!(router.len(), 10);
        for k in 0..10u64 {
            assert_eq!(router.read(&format!("key-{k}"), 0).unwrap().value, Some(k));
        }
        // Both clusters got some keys (10 keys, 2 clusters, seeded hash).
        let counts = router.key_counts();
        assert_eq!(counts.iter().map(|&(_, n)| n).sum::<usize>(), 10);
        assert!(counts.iter().all(|&(_, n)| n > 0), "{counts:?}");
    }

    #[test]
    fn routing_agrees_with_the_ring() {
        let router = tiny_router(3);
        for k in 0..36u64 {
            let key = format!("key-{k}");
            router.write(key.clone(), k);
            let cluster = router.cluster_of(&key);
            assert!(
                router
                    .cluster_store(cluster)
                    .unwrap()
                    .shard_of(&key)
                    .is_some(),
                "key {key} not bound in its routed cluster {cluster}"
            );
        }
    }

    #[test]
    fn add_cluster_rebalances_and_preserves_values() {
        let router = tiny_router(1);
        for k in 0..12u64 {
            router.write(format!("key-{k}"), k * 7);
        }
        let new = router.add_cluster();
        assert_eq!(new, 1);
        assert_eq!(router.cluster_count(), 2);
        // Fair share of the 16 ring slots.
        assert_eq!(router.ring().slots_of(1).len(), 8);
        assert_eq!(router.len(), 12);
        for k in 0..12u64 {
            let key = format!("key-{k}");
            assert_eq!(router.read(&key, 0).unwrap().value, Some(k * 7));
            // Keys live where the ring says they live.
            let cluster = router.cluster_of(&key);
            assert!(router.cluster_store(cluster).unwrap().contains_key(&key));
        }
    }

    #[test]
    fn remove_cluster_drains_and_retires() {
        let router = tiny_router(2);
        for k in 0..10u64 {
            router.write(format!("key-{k}"), k + 100);
        }
        let drained = router.cluster_store(0).unwrap().len();
        let moved = router.remove_cluster(0);
        assert_eq!(moved, drained);
        assert_eq!(router.cluster_count(), 1);
        assert!(router.cluster_store(0).is_none());
        assert_eq!(router.len(), 10);
        for k in 0..10u64 {
            let key = format!("key-{k}");
            assert_eq!(router.read(&key, 0).unwrap().value, Some(k + 100));
            assert_eq!(router.cluster_of(&key), 1);
        }
    }

    #[test]
    #[should_panic(expected = "only live cluster")]
    fn removing_the_last_cluster_panics() {
        let router = tiny_router(1);
        router.remove_cluster(0);
    }

    #[test]
    fn metrics_expose_per_cluster_keys_summing_to_total() {
        let router = tiny_router(2);
        for k in 0..8u64 {
            router.write(format!("key-{k}"), k);
            router.read(&format!("key-{k}"), 0);
        }
        let snap = router.metrics_snapshot();
        let per_cluster: u64 = snap.gauge_values(names::ROUTER_KEYS).iter().sum();
        assert_eq!(per_cluster, router.len() as u64);
        assert_eq!(snap.gauge(names::ROUTER_CLUSTERS, &[]), Some(2));
        let slots: u64 = snap.gauge_values(names::ROUTER_RING_SLOTS).iter().sum();
        assert_eq!(slots, 16);
        // Router-level latency histograms carry per-cluster labels and
        // cover every op.
        let reads: u64 = router
            .cluster_ids()
            .into_iter()
            .filter_map(|c| {
                let label = c.to_string();
                snap.histogram(names::ROUTER_READ_LATENCY, &[("cluster", &label)])
                    .map(|h| h.count())
            })
            .sum();
        assert_eq!(reads, 8);
        // After a rebalance the sum invariant still holds.
        router.add_cluster();
        let snap = router.metrics_snapshot();
        let per_cluster: u64 = snap.gauge_values(names::ROUTER_KEYS).iter().sum();
        assert_eq!(per_cluster, router.len() as u64);
        assert!(snap.counter(names::ROUTER_SLOT_MOVES, &[]) > 0);
    }

    #[test]
    fn over_capacity_surfaces_as_typed_error() {
        let cfg = StorageConfig::optimal(1, 1, 1);
        let router: StoreRouter<u64, u64> = StoreRouter::deploy(
            cfg,
            ProtocolKind::Safe,
            RouterConfig::new(1, 2).with_ring_slots(4),
        );
        router.write(1, 1);
        router.write(2, 2);
        match router.try_write(3, 3) {
            Err(StoreError::OverCapacity { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected over-capacity, got {other:?}"),
        }
    }
}
