//! Violation reporting shared by all checkers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which consistency clause a violation breaks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Safety: a read not concurrent with any write returned something
    /// other than the last written value (§2.2).
    SafetyWrongValue,
    /// Regularity clause 1: a read returned a value that was never written.
    RegularityPhantomValue,
    /// Regularity clause 2: a read succeeding write `k` returned an older
    /// write.
    RegularityStaleValue,
    /// Regularity clause 3: a read returned a write that neither precedes
    /// nor is concurrent with it (a value "from the future").
    RegularityFutureValue,
    /// Atomicity: two non-concurrent reads observed writes in inverted
    /// order (new/old inversion).
    AtomicityInversion,
    /// The history itself is malformed (overlapping ops of one client, …).
    MalformedHistory,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::SafetyWrongValue => "safety: wrong value",
            ViolationKind::RegularityPhantomValue => "regularity(1): phantom value",
            ViolationKind::RegularityStaleValue => "regularity(2): stale value",
            ViolationKind::RegularityFutureValue => "regularity(3): future value",
            ViolationKind::AtomicityInversion => "atomicity: new/old inversion",
            ViolationKind::MalformedHistory => "malformed history",
        };
        f.write_str(s)
    }
}

/// One detected violation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The broken clause.
    pub kind: ViolationKind,
    /// Human-readable specifics (operation indexes, expected vs. got).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Outcome of a consistency check: `Ok(())` or every violation found.
pub type CheckResult = Result<(), Vec<Violation>>;

/// Collects violations and converts to a [`CheckResult`].
#[derive(Debug, Default)]
pub(crate) struct Collector {
    violations: Vec<Violation>,
}

impl Collector {
    pub(crate) fn new() -> Self {
        Collector::default()
    }

    pub(crate) fn push(&mut self, kind: ViolationKind, detail: String) {
        self.violations.push(Violation { kind, detail });
    }

    pub(crate) fn finish(self) -> CheckResult {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_roundtrip() {
        let c = Collector::new();
        assert!(c.finish().is_ok());

        let mut c = Collector::new();
        c.push(ViolationKind::SafetyWrongValue, "read 3".into());
        let err = c.finish().unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].kind, ViolationKind::SafetyWrongValue);
        assert!(err[0].to_string().contains("read 3"));
    }

    #[test]
    fn display_names_are_distinct() {
        use ViolationKind::*;
        let all = [
            SafetyWrongValue,
            RegularityPhantomValue,
            RegularityStaleValue,
            RegularityFutureValue,
            AtomicityInversion,
            MalformedHistory,
        ];
        let mut names: Vec<String> = all.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
