//! The safe-storage reader (Figure 4).
//!
//! The paper's key novelty: in *both* rounds the reader writes control data
//! (a fresh timestamp `tsr'_j`) into the objects and reads their `pw`/`w`
//! fields back. The two writes arm the `conflict` predicate — a Byzantine
//! object that forges a candidate "from the future" must claim some object
//! `s_i` reported a reader timestamp higher than the reader has issued,
//! which either exposes the forger (conflict with `s_i` in round 1) or
//! forces `s_i`'s round-2 reply to corroborate the candidate.
//!
//! A READ always takes exactly two round-trips: the optimal worst case
//! proved by Proposition 1, achieved by Proposition 2.

use std::collections::{BTreeSet, HashMap};

use vrr_sim::{Automaton, Context, ProcessId};

use crate::config::StorageConfig;
use crate::mis::conflict_free_of_size;
use crate::msg::{Msg, ReadRound};
use crate::types::{Timestamp, TsVal, Value, WTuple};

/// Identifies one READ invocation on a [`SafeReader`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ReadId(pub u64);

/// Ablation knobs for the safe reader.
///
/// The defaults are the paper's Figure 4 plus the sound one-round fast
/// path (which self-disables wherever Proposition 1 applies, so the
/// default *behaves* exactly like Figure 4 at `S ≤ 2t + 2b`). Each other
/// knob removes or weakens one load-bearing mechanism; the mutation
/// experiments (E-T1) show the consistency checkers catch the resulting
/// violations, and the ablation benches quantify what each mechanism
/// costs. **Never deviate from [`SafeTuning::default`] in production
/// use.**
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SafeTuning {
    /// Supporters required by `safe(c)`; `None` = the paper's `b + 1`.
    pub safe_threshold: Option<usize>,
    /// Contradictors required to eliminate a candidate; `None` = the
    /// paper's `t + b + 1`.
    pub elim_threshold: Option<usize>,
    /// Run the round-1 `conflict(i, k)` filter (Figure 4 line 11).
    pub conflict_check: bool,
    /// Skip the second round *unconditionally* and decide on round-1
    /// evidence with the unchanged Figure 4 rules — the **unsound**
    /// one-round *mutant* that Proposition 1 convicts (the lower-bound
    /// demo). Not to be confused with [`SafeTuning::fast_path`], which is
    /// the sound fast path: it only fires above the Proposition 1
    /// boundary, demands [`StorageConfig::fast_read_quorum`] exact
    /// confirmations, and otherwise falls back to the full second round.
    pub skip_round2: bool,
    /// Attempt the sound one-round fast path when the sizing permits it
    /// (`S ≥ 2t + 2b + 1`); at or below the boundary this knob is inert.
    /// Default `true`.
    pub fast_path: bool,
    /// Confirmations the fast path demands; `None` = the derived
    /// [`StorageConfig::fast_read_quorum`]. Raising it is sound (more
    /// fallbacks, e.g. `Some(usize::MAX)` benches the pure-fallback
    /// cost); lowering it below the derived count re-opens the
    /// Proposition 1 trap — mutation experiments only.
    pub fast_threshold: Option<usize>,
}

impl Default for SafeTuning {
    fn default() -> Self {
        SafeTuning {
            safe_threshold: None,
            elim_threshold: None,
            conflict_check: true,
            skip_round2: false,
            fast_path: true,
            fast_threshold: None,
        }
    }
}

/// Cumulative one-round fast-path counters of a reader.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Reads that completed in one round via the fast path.
    pub hits: u64,
    /// Reads that were *eligible* (sizing above the Proposition 1
    /// boundary, fast path enabled) but lacked the confirmation strength
    /// at the moment the round-1 quorum closed, and fell back to the full
    /// two-round protocol.
    pub fallbacks: u64,
}

/// The result of a completed READ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadOutcome<V> {
    /// The returned value; `None` is the initial value `⊥` (`v0`).
    pub value: Option<V>,
    /// The timestamp associated with the returned value.
    pub ts: Timestamp,
    /// Communication round-trips used.
    pub rounds: u32,
    /// Completed via the sound one-round fast path (`rounds == 1` without
    /// any soundness caveat; the unsound `skip_round2` mutant reports
    /// `rounds == 1` with `fast == false`).
    pub fast: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Round1,
    Round2,
}

#[derive(Clone, Debug)]
struct ReadOp<V> {
    id: ReadId,
    /// `tsrFR`: the reader timestamp of the first round (Figure 4 line 9).
    tsr_fr: u64,
    phase: Phase,
    /// Objects whose ACK was accepted, per round (first ACK per object
    /// counts; equivocating repeats are ignored).
    answered: [BTreeSet<usize>; 2],
    /// `Resp1`: objects that answered round 1 (Figure 4 line 5).
    resp_first: BTreeSet<usize>,
    /// `w` tuples reported per object across both rounds (backs `RW`).
    reported_w: HashMap<usize, BTreeSet<WTuple<V>>>,
    /// `w` tuples reported per object in round 1 (backs `FirstRW`).
    first_reported_w: HashMap<usize, BTreeSet<WTuple<V>>>,
    /// `pw` pairs reported per object across both rounds (backs `RPW`).
    reported_pw: HashMap<usize, BTreeSet<TsVal<V>>>,
    /// The candidate set `C`.
    candidates: BTreeSet<WTuple<V>>,
    /// Tuples removed from `C` by lines 27–28; removal is permanent because
    /// `RespondedWO` only grows.
    eliminated: BTreeSet<WTuple<V>>,
}

/// The reader automaton `r_j` of the safe protocol (Figure 4).
///
/// Drive with [`SafeReader::invoke_read`]; poll [`SafeReader::outcome`].
#[derive(Clone, Debug)]
pub struct SafeReader<V> {
    cfg: StorageConfig,
    objects: Vec<ProcessId>,
    object_index: HashMap<ProcessId, usize>,
    /// This reader's index `j`.
    j: usize,
    /// `tsr'_j`: strictly increases on every round of every READ.
    tsr: u64,
    tuning: SafeTuning,
    op: Option<ReadOp<V>>,
    outcomes: HashMap<ReadId, ReadOutcome<V>>,
    next_id: u64,
    fast_stats: FastPathStats,
}

impl<V: Value> SafeReader<V> {
    /// A reader with index `j` for the given deployment.
    ///
    /// # Panics
    ///
    /// Panics if `objects.len() != cfg.s` or `j >= cfg.readers`.
    pub fn new(cfg: StorageConfig, j: usize, objects: Vec<ProcessId>) -> Self {
        Self::with_tuning(cfg, j, objects, SafeTuning::default())
    }

    /// A reader with explicit ablation knobs (see [`SafeTuning`]); for
    /// mutation experiments and ablation benches only.
    ///
    /// # Panics
    ///
    /// Panics if `objects.len() != cfg.s` or `j >= cfg.readers`.
    pub fn with_tuning(
        cfg: StorageConfig,
        j: usize,
        objects: Vec<ProcessId>,
        tuning: SafeTuning,
    ) -> Self {
        assert_eq!(objects.len(), cfg.s, "reader must know all S objects");
        assert!(j < cfg.readers, "reader index out of range");
        let object_index = objects.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        SafeReader {
            cfg,
            objects,
            object_index,
            j,
            tsr: 0,
            tuning,
            op: None,
            outcomes: HashMap::new(),
            next_id: 0,
            fast_stats: FastPathStats::default(),
        }
    }

    /// Starts a READ (Figure 4 lines 7–10). Returns the invocation id.
    ///
    /// # Panics
    ///
    /// Panics if a READ by this reader is already in progress (§2.2:
    /// well-formed clients).
    pub fn invoke_read(&mut self, ctx: &mut Context<'_, Msg<V>>) -> ReadId {
        assert!(self.op.is_none(), "well-formed reader: one READ at a time");
        let id = ReadId(self.next_id);
        self.next_id += 1;

        self.tsr += 1; // line 9: tsrFR := tsr'_j := tsr'_j + 1
        let tsr_fr = self.tsr;
        self.op = Some(ReadOp {
            id,
            tsr_fr,
            phase: Phase::Round1,
            answered: [BTreeSet::new(), BTreeSet::new()],
            resp_first: BTreeSet::new(),
            reported_w: HashMap::new(),
            first_reported_w: HashMap::new(),
            reported_pw: HashMap::new(),
            candidates: BTreeSet::new(),
            eliminated: BTreeSet::new(),
        });
        let msg = Msg::Read {
            round: ReadRound::R1,
            reader: self.j,
            tsr: tsr_fr,
            since: None,
            // The safe object keeps no history, so there is nothing to GC.
            ack: Timestamp::ZERO,
        };
        ctx.broadcast(self.objects.iter().copied(), msg); // line 10
        id
    }

    /// The outcome of read `id`, if complete.
    pub fn outcome(&self, id: ReadId) -> Option<&ReadOutcome<V>> {
        self.outcomes.get(&id)
    }

    /// Whether no READ is in progress.
    pub fn is_idle(&self) -> bool {
        self.op.is_none()
    }

    /// The reader's index `j`.
    pub fn index(&self) -> usize {
        self.j
    }

    /// Live candidates (`C`), for harness introspection.
    pub fn candidate_count(&self) -> usize {
        self.op.as_ref().map_or(0, |op| op.candidates.len())
    }

    /// Cumulative fast-path hit/fallback counters.
    pub fn fast_stats(&self) -> FastPathStats {
        self.fast_stats
    }

    // ---- Figure 4 predicate implementations --------------------------------

    /// `RespondedWO(c)` (line 2): objects that reported some `w` tuple
    /// different from `c` in either round.
    fn responded_wo(op: &ReadOp<V>, c: &WTuple<V>) -> usize {
        op.reported_w
            .values()
            .filter(|set| set.iter().any(|c2| c2 != c))
            .count()
    }

    /// The per-object support test behind `safe(c)` (line 3): the object
    /// reported `c` (or `c.tsval` in `pw`), or anything with a strictly
    /// higher timestamp.
    fn supports(op: &ReadOp<V>, c: &WTuple<V>, obj: usize) -> bool {
        let ts = c.ts();
        let in_w = op
            .reported_w
            .get(&obj)
            .is_some_and(|set| set.iter().any(|c2| c2 == c || c2.ts() > ts));
        if in_w {
            return true;
        }
        op.reported_pw
            .get(&obj)
            .is_some_and(|set| set.iter().any(|p| *p == c.tsval || p.ts > ts))
    }

    /// `safe(c)` (line 3): at least `b + 1` supporting objects (or the
    /// ablation override).
    fn is_safe(&self, op: &ReadOp<V>, c: &WTuple<V>) -> bool {
        let support = op
            .reported_w
            .keys()
            .chain(op.reported_pw.keys())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .filter(|&&obj| Self::supports(op, c, obj))
            .count();
        support >= self.tuning.safe_threshold.unwrap_or(self.cfg.b_plus_1())
    }

    /// `conflict(i, k)` (line 1): `k` reported, in round 1, a live candidate
    /// claiming object `i` gave the writer a reader timestamp beyond
    /// `tsrFR`.
    fn conflict(op: &ReadOp<V>, j: usize, i: usize, k: usize) -> bool {
        let Some(firsts) = op.first_reported_w.get(&k) else {
            return false;
        };
        firsts.iter().any(|c| {
            op.candidates.contains(c)
                && c.tsrarray
                    .get(i, j)
                    .is_some_and(|reported| reported > op.tsr_fr)
        })
    }

    /// Lines 27–28: drop candidates contradicted by `t + b + 1` objects
    /// (or the ablation override).
    fn recheck_eliminations(&mut self) {
        let threshold = self
            .tuning
            .elim_threshold
            .unwrap_or(self.cfg.t_plus_b_plus_1());
        let Some(op) = self.op.as_mut() else { return };
        let doomed: Vec<WTuple<V>> = op
            .candidates
            .iter()
            .filter(|c| Self::responded_wo(op, c) >= threshold)
            .cloned()
            .collect();
        for c in doomed {
            op.candidates.remove(&c);
            op.eliminated.insert(c);
        }
    }

    /// Line 11: advance to round 2 once a conflict-free quorum answered.
    fn try_advance(&mut self, ctx: &mut Context<'_, Msg<V>>) {
        let Some(op) = self.op.as_ref() else { return };
        if op.phase != Phase::Round1 {
            return;
        }
        let members: Vec<usize> = op.resp_first.iter().copied().collect();
        if members.len() < self.cfg.quorum() {
            return;
        }
        let j = self.j;
        let ok = !self.tuning.conflict_check
            || conflict_free_of_size(
                &members,
                |i, k| Self::conflict(op, j, i, k),
                self.cfg.quorum(),
            )
            .is_some();
        if !ok {
            return;
        }
        // Fast path (extension; the converse of Proposition 1): with
        // S ≥ 2t + 2b + 1 objects, a sufficiently strong exact
        // confirmation of the highest candidate already decides the read
        // here, and the second round is skipped *soundly*. Checked exactly
        // once, at the moment the conflict-free round-1 quorum closes —
        // on failure the read proceeds to round 2 below, reusing every
        // reply already collected (no restart).
        if self.try_fast_finish() {
            return;
        }
        // Lines 12–13: inc(tsr'_j); send READ2 to all objects.
        self.tsr += 1;
        let tsr = self.tsr;
        let skip_round2 = self.tuning.skip_round2;
        let op = self.op.as_mut().expect("checked above");
        debug_assert_eq!(tsr, op.tsr_fr + 1);
        op.phase = Phase::Round2;
        if !skip_round2 {
            let msg = Msg::Read {
                round: ReadRound::R2,
                reader: j,
                tsr,
                since: None,
                ack: Timestamp::ZERO,
            };
            ctx.broadcast(self.objects.iter().copied(), msg);
        }
        // Under skip_round2 (fast-read mutant) the decision runs on
        // round-1 evidence alone.
    }

    /// The sound one-round fast path: complete now iff the highest live
    /// candidate has [`StorageConfig::fast_read_quorum`] *exact* round-1
    /// confirmations. Returns whether the read completed.
    ///
    /// Soundness: `need = S − 2t` exact confirmations contain at least
    /// `need − b ≥ b + 1` correct objects (for `S ≥ 2t + 2b + 1`), so the
    /// candidate was genuinely written — a forgery musters at most `b`.
    /// And any completed write `w_k` is held by ≥ `S − t − b` correct
    /// objects, of which ≥ `S − 2t − b ≥ b + 1 ≥ 1` sit in this round-1
    /// quorum and cannot be out-shouted by eliminations (elimination needs
    /// `t + b + 1` dissenters; at most `t + b` objects lack `w_k`), so the
    /// highest candidate's timestamp is at least `k`: the returned value
    /// is never older than the last completed write. Only *exact* round-1
    /// reports count — the `pw`-or-higher leniency of `safe(c)` is for
    /// round 2, where the conflict machinery backs it up.
    fn try_fast_finish(&mut self) -> bool {
        if !self.tuning.fast_path {
            return false;
        }
        let Some(need) = self
            .tuning
            .fast_threshold
            .or_else(|| self.cfg.fast_read_quorum())
        else {
            return false; // Proposition 1 territory: refuse to engage.
        };
        let Some(op) = self.op.as_ref() else {
            return false;
        };
        debug_assert_eq!(op.phase, Phase::Round1);
        let Some(high) = op.candidates.iter().map(WTuple::ts).max() else {
            self.fast_stats.fallbacks += 1;
            return false;
        };
        let confirmed = op
            .candidates
            .iter()
            .filter(|c| c.ts() == high) // highCand(c) only, as in line 14
            .find(|c| {
                let exact = op
                    .resp_first
                    .iter()
                    .filter(|&&i| {
                        op.first_reported_w
                            .get(&i)
                            .is_some_and(|set| set.contains(*c))
                            || op
                                .reported_pw
                                .get(&i)
                                .is_some_and(|set| set.contains(&c.tsval))
                    })
                    .count();
                exact >= need
            });
        match confirmed.cloned() {
            Some(cret) => {
                let id = op.id;
                self.outcomes.insert(
                    id,
                    ReadOutcome {
                        value: cret.tsval.value.clone(),
                        ts: cret.ts(),
                        rounds: 1,
                        fast: true,
                    },
                );
                self.op = None;
                self.fast_stats.hits += 1;
                true
            }
            None => {
                self.fast_stats.fallbacks += 1;
                false
            }
        }
    }

    /// Line 14: complete once the highest live candidate is safe, or `C`
    /// drained (return `v0`).
    fn try_finish(&mut self) {
        let Some(op) = self.op.as_ref() else { return };
        if op.phase != Phase::Round2 {
            return;
        }
        let rounds = if self.tuning.skip_round2 { 1 } else { 2 };
        if op.candidates.is_empty() {
            // Lines 15–16: return the default value v0 = ⊥.
            let id = op.id;
            self.outcomes.insert(
                id,
                ReadOutcome {
                    value: None,
                    ts: Timestamp::ZERO,
                    rounds,
                    fast: false,
                },
            );
            self.op = None;
            return;
        }
        let high = op
            .candidates
            .iter()
            .map(WTuple::ts)
            .max()
            .expect("non-empty");
        let ret = op
            .candidates
            .iter()
            .filter(|c| c.ts() == high) // highCand(c), line 4
            .find(|c| self.is_safe(op, c))
            .cloned();
        if let Some(cret) = ret {
            // Lines 18–19: return cret.tsval.v.
            let id = op.id;
            self.outcomes.insert(
                id,
                ReadOutcome {
                    value: cret.tsval.value.clone(),
                    ts: cret.ts(),
                    rounds,
                    fast: false,
                },
            );
            self.op = None;
        }
    }
}

impl<V: Value> Automaton<Msg<V>> for SafeReader<V> {
    fn on_message(&mut self, from: ProcessId, msg: Msg<V>, ctx: &mut Context<'_, Msg<V>>) {
        let Some(&obj) = self.object_index.get(&from) else {
            return;
        };
        let Msg::ReadAckSafe { round, tsr, pw, w } = msg else {
            return;
        };
        let Some(op) = self.op.as_mut() else { return };

        match round {
            ReadRound::R1 => {
                // Lines 21–24. Accept the first round-1 ACK per object that
                // echoes this op's tsrFR (stale or replayed ACKs fail the
                // echo check because tsr'_j strictly increases).
                if tsr != op.tsr_fr || !op.answered[0].insert(obj) {
                    return;
                }
                op.resp_first.insert(obj);
                op.first_reported_w
                    .entry(obj)
                    .or_default()
                    .insert(w.clone());
                op.reported_w.entry(obj).or_default().insert(w.clone());
                op.reported_pw.entry(obj).or_default().insert(pw);
                if !op.eliminated.contains(&w) {
                    op.candidates.insert(w);
                }
            }
            ReadRound::R2 => {
                // Lines 25–26. A correct object only sends a round-2 ACK
                // after receiving READ2, so requiring phase == Round2 and
                // the exact echo tsrFR + 1 loses nothing from correct
                // objects and blunts Byzantine guessing.
                if op.phase != Phase::Round2 || tsr != op.tsr_fr + 1 || !op.answered[1].insert(obj)
                {
                    return;
                }
                op.reported_w.entry(obj).or_default().insert(w);
                op.reported_pw.entry(obj).or_default().insert(pw);
            }
        }

        self.recheck_eliminations();
        self.try_advance(ctx);
        self.try_finish();
    }

    fn label(&self) -> &'static str {
        "safe-reader"
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;
    use crate::types::TsrMatrix;

    /// S = 4, t = b = 1, quorum = 3.
    fn cfg() -> StorageConfig {
        StorageConfig::optimal(1, 1, 1)
    }

    fn objects() -> Vec<ProcessId> {
        (0..4).map(ProcessId).collect()
    }

    fn reader() -> SafeReader<u64> {
        SafeReader::new(cfg(), 0, objects())
    }

    fn invoke(r: &mut SafeReader<u64>) -> (ReadId, Vec<(ProcessId, Msg<u64>)>) {
        let mut out = Vec::new();
        let mut ctx = Context::new(ProcessId(9), &mut out);
        let id = r.invoke_read(&mut ctx);
        (id, out)
    }

    fn deliver(r: &mut SafeReader<u64>, from: usize, msg: Msg<u64>) -> Vec<(ProcessId, Msg<u64>)> {
        let mut out = Vec::new();
        let mut ctx = Context::new(ProcessId(9), &mut out);
        r.on_message(ProcessId(from), msg, &mut ctx);
        out
    }

    fn honest_ack(round: ReadRound, tsr: u64, ts: u64, v: u64) -> Msg<u64> {
        let tsval = TsVal::new(Timestamp(ts), v);
        Msg::ReadAckSafe {
            round,
            tsr,
            pw: tsval.clone(),
            w: WTuple::new(tsval, TsrMatrix::empty()),
        }
    }

    fn bottom_ack(round: ReadRound, tsr: u64) -> Msg<u64> {
        Msg::ReadAckSafe {
            round,
            tsr,
            pw: TsVal::bottom(),
            w: WTuple::initial(),
        }
    }

    #[test]
    fn read_completes_in_two_rounds_on_agreeing_objects() {
        let mut r = reader();
        let (id, out) = invoke(&mut r);
        assert_eq!(out.len(), 4, "READ1 to all");

        // Round 1: three identical honest answers advance to round 2, and
        // since b+1 = 2 round-1 replies already support the candidate, the
        // wait-until of line 14 is satisfied immediately at round-2 entry.
        for i in 0..2 {
            assert!(deliver(&mut r, i, honest_ack(ReadRound::R1, 1, 1, 42)).is_empty());
            assert!(r.outcome(id).is_none());
        }
        let read2 = deliver(&mut r, 2, honest_ack(ReadRound::R1, 1, 1, 42));
        assert_eq!(read2.len(), 4, "READ2 broadcast after conflict-free quorum");
        assert!(matches!(
            read2[0].1,
            Msg::Read {
                round: ReadRound::R2,
                tsr: 2,
                ..
            }
        ));

        let got = r.outcome(id).expect("read complete");
        assert_eq!(got.value, Some(42));
        assert_eq!(got.ts, Timestamp(1));
        assert_eq!(got.rounds, 2);
        assert!(r.is_idle());
    }

    #[test]
    fn unsupported_forged_high_candidate_blocks_until_eliminated() {
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        // Object 3 is Byzantine: forges ts=99. Objects 0 and 1 honestly
        // report ts=1 (value 42): quorum {3,0,1} reached, round 2 opens.
        deliver(&mut r, 3, honest_ack(ReadRound::R1, 1, 99, 666));
        deliver(&mut r, 0, honest_ack(ReadRound::R1, 1, 1, 42));
        deliver(&mut r, 1, honest_ack(ReadRound::R1, 1, 1, 42));
        // The forged candidate is high but unsafe (1 supporter < b+1 = 2);
        // the honest candidate is safe but not high: the read must block.
        assert!(r.outcome(id).is_none());
        // Honest round-2 replies repeat the honest tuple; RespondedWO(forged)
        // stays at {0, 1} — still blocked.
        deliver(&mut r, 0, honest_ack(ReadRound::R2, 2, 1, 42));
        deliver(&mut r, 1, honest_ack(ReadRound::R2, 2, 1, 42));
        assert!(r.outcome(id).is_none());
        // Object 2's (late round-1) honest reply is the t+b+1 = 3rd object
        // answering without the forged tuple: elimination fires and the
        // honest candidate becomes the high safe candidate.
        deliver(&mut r, 2, honest_ack(ReadRound::R1, 1, 1, 42));
        let got = r.outcome(id).expect("forged candidate eliminated");
        assert_eq!(
            got.value,
            Some(42),
            "must fall back to the honest candidate"
        );
    }

    #[test]
    fn returns_bottom_when_nothing_written() {
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        for i in 0..3 {
            deliver(&mut r, i, bottom_ack(ReadRound::R1, 1));
        }
        let got = r.outcome(id).expect("complete");
        assert_eq!(got.value, None, "initial value ⊥");
        assert_eq!(got.ts, Timestamp::ZERO);
    }

    #[test]
    fn conflicting_accusation_excludes_forger_from_quorum() {
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        // Byzantine object 3 forges a candidate accusing object 0 of having
        // reported reader timestamp 50 > tsrFR = 1.
        let mut matrix = TsrMatrix::empty();
        matrix.set_row(0, BTreeMap::from([(0usize, 50u64)]));
        let forged = Msg::ReadAckSafe {
            round: ReadRound::R1,
            tsr: 1,
            pw: TsVal::new(Timestamp(9), 666),
            w: WTuple::new(TsVal::new(Timestamp(9), 666), matrix),
        };
        deliver(&mut r, 3, forged);
        deliver(&mut r, 0, bottom_ack(ReadRound::R1, 1));
        deliver(&mut r, 1, bottom_ack(ReadRound::R1, 1));
        // Responders = {0, 1, 3} with conflict(0, 3): the largest
        // conflict-free subset is {0, 1} or {1, 3}, both < quorum=3 — the
        // read must NOT advance to round 2 yet.
        assert!(r.outcome(id).is_none());
        let sent = deliver(&mut r, 2, bottom_ack(ReadRound::R1, 1));
        // Now {0, 1, 2} is conflict-free of size 3: advance + finish (⊥ is
        // the high safe candidate... the forged candidate has higher ts but
        // was it eliminated? RespondedWO(forged) = 3 (objects 0,1,2) =
        // t+b+1: eliminated. ⊥ tuple supported by 3 ≥ b+1: safe.)
        assert!(!sent.is_empty(), "READ2 must have been broadcast");
        let got = r.outcome(id).expect("complete");
        assert_eq!(got.value, None);
    }

    #[test]
    fn duplicate_round1_acks_from_one_object_are_ignored() {
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        for _ in 0..3 {
            deliver(&mut r, 0, honest_ack(ReadRound::R1, 1, 1, 42));
        }
        assert!(
            r.outcome(id).is_none(),
            "one object cannot form a quorum by repeating"
        );
    }

    #[test]
    fn acks_with_wrong_echo_are_ignored() {
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        for i in 0..3 {
            deliver(&mut r, i, honest_ack(ReadRound::R1, 77, 1, 42)); // wrong tsr echo
        }
        assert!(r.outcome(id).is_none());
    }

    #[test]
    fn round2_acks_before_round2_are_ignored() {
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        // Byzantine objects guess tsrFR + 1 and push round-2 ACKs early.
        for i in 0..3 {
            deliver(&mut r, i, honest_ack(ReadRound::R2, 2, 1, 42));
        }
        assert!(
            r.outcome(id).is_none(),
            "round-2 ACKs must not bypass round 1"
        );
    }

    #[test]
    fn sequential_reads_use_fresh_timestamps() {
        let mut r = reader();
        let (id1, out1) = invoke(&mut r);
        let first_tsr = match out1[0].1 {
            Msg::Read { tsr, .. } => tsr,
            _ => unreachable!(),
        };
        for i in 0..3 {
            deliver(&mut r, i, honest_ack(ReadRound::R1, first_tsr, 1, 5));
        }
        assert!(r.outcome(id1).is_some());
        let (_id2, out2) = invoke(&mut r);
        let second_tsr = match out2[0].1 {
            Msg::Read { tsr, .. } => tsr,
            _ => unreachable!(),
        };
        assert!(
            second_tsr > first_tsr + 1,
            "tsr must strictly increase across ops"
        );
    }

    #[test]
    #[should_panic(expected = "one READ at a time")]
    fn rejects_concurrent_reads() {
        let mut r = reader();
        let (_, _) = invoke(&mut r);
        let (_, _) = invoke(&mut r);
    }

    /// S = 5 = 2t+2b+1, t = b = 1: quorum = 4, fast quorum = 3.
    fn fast_cfg() -> StorageConfig {
        StorageConfig::fast(1, 1, 1)
    }

    fn fast_reader() -> SafeReader<u64> {
        SafeReader::new(fast_cfg(), 0, (0..5).map(ProcessId).collect())
    }

    #[test]
    fn fast_path_completes_in_one_round_when_quorum_agrees() {
        let mut r = fast_reader();
        let (id, out) = invoke(&mut r);
        assert_eq!(out.len(), 5, "READ1 to all");
        for i in 0..3 {
            assert!(deliver(&mut r, i, honest_ack(ReadRound::R1, 1, 1, 42)).is_empty());
            assert!(r.outcome(id).is_none());
        }
        // Fourth matching reply closes the quorum with 4 >= 3 exact
        // confirmations: the read completes with NO second round.
        let sent = deliver(&mut r, 3, honest_ack(ReadRound::R1, 1, 1, 42));
        assert!(sent.is_empty(), "fast path must not broadcast READ2");
        let got = r.outcome(id).expect("fast read complete");
        assert_eq!(got.value, Some(42));
        assert_eq!(got.rounds, 1);
        assert!(got.fast);
        assert_eq!(
            r.fast_stats(),
            FastPathStats {
                hits: 1,
                fallbacks: 0
            }
        );
    }

    #[test]
    fn fast_path_falls_back_without_restarting_round1() {
        let mut r = fast_reader();
        let (id, _) = invoke(&mut r);
        // Only 2 of the 4 quorum replies confirm the write (the others
        // missed it, e.g. the write is still in flight to them): 2 < 3.
        deliver(&mut r, 0, honest_ack(ReadRound::R1, 1, 1, 42));
        deliver(&mut r, 1, honest_ack(ReadRound::R1, 1, 1, 42));
        deliver(&mut r, 2, bottom_ack(ReadRound::R1, 1));
        let sent = deliver(&mut r, 3, bottom_ack(ReadRound::R1, 1));
        assert_eq!(sent.len(), 5, "fallback broadcasts READ2 to all");
        assert_eq!(
            r.fast_stats(),
            FastPathStats {
                hits: 0,
                fallbacks: 1
            }
        );
        // The two-round machinery finishes on the reused round-1 evidence
        // (b+1 = 2 supporters already satisfy line 14 at round-2 entry).
        let got = r.outcome(id).expect("fallback read complete");
        assert_eq!(got.value, Some(42));
        assert_eq!(got.rounds, 2);
        assert!(!got.fast);
    }

    #[test]
    fn fast_path_refuses_at_the_proposition1_boundary() {
        // S = 4 = 2t + 2b: Proposition 1 applies, the fast path must not
        // engage even on a unanimous round-1 quorum.
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        for i in 0..2 {
            deliver(&mut r, i, honest_ack(ReadRound::R1, 1, 1, 42));
        }
        let sent = deliver(&mut r, 2, honest_ack(ReadRound::R1, 1, 1, 42));
        assert!(!sent.is_empty(), "READ2 must go out at S <= 2t+2b");
        let got = r.outcome(id).expect("complete");
        assert_eq!(got.rounds, 2);
        assert!(!got.fast);
        assert_eq!(r.fast_stats(), FastPathStats::default(), "never eligible");
    }

    #[test]
    fn forged_high_candidate_cannot_fast_fire() {
        // A Byzantine object forges the highest candidate: with only one
        // (malicious) exact confirmation the fast path must fall back, and
        // the two-round machinery must still return the genuine write.
        let mut r = fast_reader();
        let (id, _) = invoke(&mut r);
        deliver(&mut r, 4, honest_ack(ReadRound::R1, 1, 99, 666));
        deliver(&mut r, 0, honest_ack(ReadRound::R1, 1, 1, 42));
        deliver(&mut r, 1, honest_ack(ReadRound::R1, 1, 1, 42));
        deliver(&mut r, 2, honest_ack(ReadRound::R1, 1, 1, 42));
        // At quorum close the forgery was already eliminated (t+b+1 = 3
        // objects answered without it), so the honest candidate is high
        // with 3 >= 3 exact confirmations: the fast path fires — on the
        // RIGHT value.
        let got = r.outcome(id).expect("complete");
        assert_eq!(got.value, Some(42), "never the forged value");
        assert_eq!(got.rounds, 1);
        assert!(got.fast);
    }

    #[test]
    fn fast_path_disabled_by_tuning_takes_two_rounds() {
        let tuning = SafeTuning {
            fast_path: false,
            ..SafeTuning::default()
        };
        let mut r =
            SafeReader::<u64>::with_tuning(fast_cfg(), 0, (0..5).map(ProcessId).collect(), tuning);
        let (id, _) = invoke(&mut r);
        for i in 0..3 {
            deliver(&mut r, i, honest_ack(ReadRound::R1, 1, 1, 42));
        }
        let sent = deliver(&mut r, 3, honest_ack(ReadRound::R1, 1, 1, 42));
        assert_eq!(sent.len(), 5, "READ2 goes out with the fast path off");
        deliver(&mut r, 0, honest_ack(ReadRound::R2, 2, 1, 42));
        deliver(&mut r, 1, honest_ack(ReadRound::R2, 2, 1, 42));
        let got = r.outcome(id).expect("complete");
        assert_eq!(got.rounds, 2);
        assert_eq!(r.fast_stats(), FastPathStats::default());
    }

    #[test]
    fn unreachable_fast_threshold_always_falls_back() {
        let tuning = SafeTuning {
            fast_threshold: Some(usize::MAX),
            ..SafeTuning::default()
        };
        let mut r =
            SafeReader::<u64>::with_tuning(fast_cfg(), 0, (0..5).map(ProcessId).collect(), tuning);
        let (id, _) = invoke(&mut r);
        for i in 0..4 {
            deliver(&mut r, i, honest_ack(ReadRound::R1, 1, 1, 42));
        }
        assert_eq!(
            r.fast_stats(),
            FastPathStats {
                hits: 0,
                fallbacks: 1
            }
        );
        let got = r.outcome(id).expect("complete via the two-round path");
        assert_eq!(got.rounds, 2);
        assert!(!got.fast);
    }

    #[test]
    fn two_candidates_same_ts_both_high_one_safe() {
        // Byzantine object reports a tuple with the same timestamp as the
        // real write but a different matrix: both are "high"; only the real
        // one gathers b+1 support.
        let mut r = reader();
        let (id, _) = invoke(&mut r);
        let mut forged_matrix = TsrMatrix::empty();
        forged_matrix.set_row(2, BTreeMap::from([(0usize, 0u64)]));
        let forged = Msg::ReadAckSafe {
            round: ReadRound::R1,
            tsr: 1,
            pw: TsVal::new(Timestamp(1), 42),
            w: WTuple::new(TsVal::new(Timestamp(1), 41), forged_matrix),
        };
        deliver(&mut r, 3, forged);
        for i in 0..3 {
            deliver(&mut r, i, honest_ack(ReadRound::R1, 1, 1, 42));
        }
        let got = r.outcome(id).expect("complete");
        assert_eq!(got.value, Some(42), "only the corroborated tuple is safe");
    }
}
