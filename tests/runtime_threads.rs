//! Integration tests for the thread runtime: the protocols behave on real
//! threads exactly as they do in the simulator.

use std::time::Duration;

use vrr::core::attackers::AttackerKind;
use vrr::core::StorageConfig;
use vrr::runtime::{FixedDelay, NoDelay, ProtocolKind, StorageCluster};

#[test]
fn all_variants_round_trip_on_threads() {
    for kind in [
        ProtocolKind::Safe,
        ProtocolKind::Regular,
        ProtocolKind::RegularOptimized,
    ] {
        let cfg = StorageConfig::optimal(1, 1, 2);
        let storage: StorageCluster<u64> = StorageCluster::deploy(cfg, kind, Box::new(NoDelay));
        for k in 1..=4u64 {
            let w = storage.write(k * 3);
            assert_eq!(w.rounds, 2);
            for j in 0..2 {
                let r = storage.read(j);
                assert_eq!(r.value, Some(k * 3), "{kind:?} reader {j}");
                assert_eq!(r.rounds, 2);
            }
        }
    }
}

#[test]
fn byzantine_objects_on_threads_are_filtered() {
    let cfg = StorageConfig::optimal(2, 2, 1);
    for attacker in AttackerKind::ALL {
        let storage: StorageCluster<u64> =
            StorageCluster::deploy_with_objects(cfg, ProtocolKind::Safe, Box::new(NoDelay), |i| {
                (i < cfg.b).then(|| attacker.build_safe(cfg, 0xDEAD))
            });
        storage.write(77);
        let r = storage.read(0);
        assert_eq!(r.value, Some(77), "{attacker:?} corrupted a threaded read");
        assert_eq!(r.rounds, 2);
    }
}

#[test]
fn crashes_within_budget_are_transparent() {
    let cfg = StorageConfig::optimal(2, 1, 1); // t = 2
    let storage: StorageCluster<u64> =
        StorageCluster::deploy(cfg, ProtocolKind::Regular, Box::new(NoDelay));
    storage.write(1);
    storage.crash_object(1);
    storage.write(2);
    storage.crash_object(4);
    storage.write(3);
    assert_eq!(storage.read(0).value, Some(3));
}

#[test]
fn link_delay_slows_but_does_not_break() {
    let cfg = StorageConfig::optimal(1, 1, 1);
    let storage: StorageCluster<u64> = StorageCluster::deploy(
        cfg,
        ProtocolKind::Safe,
        Box::new(FixedDelay(Duration::from_millis(2))),
    );
    let t0 = std::time::Instant::now();
    storage.write(5);
    let w_elapsed = t0.elapsed();
    assert_eq!(storage.read(0).value, Some(5));
    // Two rounds x two link crossings x 2 ms each ≈ at least 8 ms.
    assert!(
        w_elapsed >= Duration::from_millis(7),
        "write finished too fast for 2 round-trips over 2 ms links: {w_elapsed:?}"
    );
}

#[test]
fn concurrent_readers_under_churn_stay_consistent() {
    // Several readers pull while the writer pushes; every observed value
    // must be one the writer actually wrote. Per-reader timestamp
    // monotonicity is asserted too: plain regularity does not promise it,
    // but the §5.1 reader's cache does (candidates come from the suffix at
    // or above the last returned timestamp).
    let cfg = StorageConfig::optimal(2, 1, 3);
    let storage: StorageCluster<u64> =
        StorageCluster::deploy(cfg, ProtocolKind::RegularOptimized, Box::new(NoDelay));
    std::thread::scope(|scope| {
        let storage = &storage;
        scope.spawn(move || {
            for k in 1..=30u64 {
                storage.write(k);
            }
        });
        let mut handles = Vec::new();
        for j in 0..3usize {
            handles.push(scope.spawn(move || {
                let mut last = vrr::core::Timestamp::ZERO;
                for _ in 0..20 {
                    let r = storage.read(j);
                    if let Some(v) = r.value {
                        assert!((1..=30).contains(&v), "phantom value {v}");
                        assert_eq!(r.ts.0, v, "value/timestamp drift");
                    }
                    assert!(r.ts >= last, "reader {j} went back in time");
                    last = r.ts;
                }
            }));
        }
    });
}
