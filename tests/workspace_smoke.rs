//! Fast canary that the façade wiring stays intact: the `vrr::*` re-export
//! paths resolve, `StorageConfig::optimal` computes the paper's object
//! count, and both paper protocols complete reads in ≤ 2 rounds on a
//! fault-free world. Runs in milliseconds; if this file stops compiling,
//! a re-export in `src/lib.rs` or a crate manifest broke.

use vrr::core::{
    run_read, run_write, RegisterProtocol, RegularProtocol, SafeProtocol, StorageConfig,
};
use vrr::sim::World;

#[test]
fn optimal_config_is_2t_plus_b_plus_1() {
    for t in 1..=5usize {
        for b in 1..=t {
            for readers in 1..=3usize {
                let cfg = StorageConfig::optimal(t, b, readers);
                assert_eq!(cfg.s, 2 * t + b + 1, "S must be 2t+b+1 for t={t} b={b}");
                assert_eq!((cfg.t, cfg.b, cfg.readers), (t, b, readers));
            }
        }
    }
}

#[test]
fn safe_read_completes_in_two_rounds_fault_free() {
    for (t, b) in [(1, 1), (2, 1), (2, 2)] {
        let cfg = StorageConfig::optimal(t, b, 1);
        let mut world = World::new(7);
        let dep = RegisterProtocol::<u64>::deploy(&SafeProtocol, cfg, &mut world);
        world.start();
        run_write(&SafeProtocol, &dep, &mut world, 42u64);
        let r = run_read::<u64, _>(&SafeProtocol, &dep, &mut world, 0);
        assert_eq!(r.value, Some(42), "safe read must return the written value");
        assert!(
            r.rounds <= 2,
            "safe read took {} rounds at t={t} b={b}",
            r.rounds
        );
    }
}

#[test]
fn regular_read_completes_in_two_rounds_fault_free() {
    for protocol in [RegularProtocol::full(), RegularProtocol::optimized()] {
        for (t, b) in [(1, 1), (2, 2)] {
            let cfg = StorageConfig::optimal(t, b, 1);
            let mut world = World::new(11);
            let dep = protocol.deploy(cfg, &mut world);
            world.start();
            run_write(&protocol, &dep, &mut world, 7u64);
            let r = run_read::<u64, _>(&protocol, &dep, &mut world, 0);
            assert_eq!(
                r.value,
                Some(7),
                "regular read must return the written value"
            );
            assert!(
                r.rounds <= 2,
                "regular read took {} rounds at t={t} b={b}",
                r.rounds
            );
        }
    }
}

#[test]
fn facade_modules_all_resolve() {
    // One symbol per re-exported crate: a compile-time wiring check.
    let _ = vrr::checker::OpHistory::<u64>::new();
    let _ = vrr::workload::FaultPlan::none();
    let _ = vrr::lowerbound::ReadRule::Masking;
    let _ = vrr::baselines::masking_object_count(1, 1);
    let _ = vrr::runtime::NoDelay;
    let _ = vrr::sim::SimTime::from_ticks(0);
}
