//! Protocol-aware Byzantine object behaviours.
//!
//! The paper's malicious objects "can perform arbitrary actions" (§2.1).
//! These constructors realize the attack strategies its proofs reason
//! about: inflating timestamps to fabricate phantom writes, forging
//! `tsrarray` entries to provoke reader-side conflicts, replaying stale
//! state, and equivocating between answers. Each attacker passes writer
//! traffic through an honest object underneath, so the system's liveness
//! assumptions (`≤ b` malicious) stay analyzable.

use std::collections::BTreeMap;

use vrr_sim::{Automaton, Tamper};

use crate::config::StorageConfig;
use crate::msg::Msg;
use crate::regular::RegularObject;
use crate::safe::SafeObject;
use crate::types::{HistEntry, Timestamp, TsVal, TsrMatrix, Value, WTuple};

/// A forged timestamp far above anything the writer will issue in an
/// experiment.
const FORGED_TS: Timestamp = Timestamp(u64::MAX / 2);

/// Catalogue of ready-made attacker behaviours, used by workload configs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackerKind {
    /// Receives everything, replies to nothing.
    Mute,
    /// Answers reads with a phantom value at an enormous timestamp.
    Inflator,
    /// Forges `tsrarray` entries accusing every object of future reader
    /// timestamps, provoking `conflict` in the readers' first round.
    Conflicter,
    /// Always replies with the initial state `σ0`, denying every write.
    Stale,
    /// Alternates between a phantom value and honest answers.
    Equivocator,
    /// Lies about history suffixes: answers every read with an *empty*
    /// history, as if garbage collection had already discarded everything
    /// the reader asked for. (Against the safe protocol, which has no
    /// histories, this degenerates to [`AttackerKind::Stale`].)
    Truncator,
}

impl AttackerKind {
    /// All attacker kinds, for sweep experiments.
    pub const ALL: [AttackerKind; 6] = [
        AttackerKind::Mute,
        AttackerKind::Inflator,
        AttackerKind::Conflicter,
        AttackerKind::Stale,
        AttackerKind::Equivocator,
        AttackerKind::Truncator,
    ];

    /// Builds this attacker against the safe protocol.
    pub fn build_safe<V: Value>(self, cfg: StorageConfig, forged: V) -> Box<dyn Automaton<Msg<V>>> {
        match self {
            AttackerKind::Mute => Box::new(vrr_sim::Mute),
            AttackerKind::Inflator => inflating_safe_object(forged),
            AttackerKind::Conflicter => conflicting_safe_object(cfg, forged),
            AttackerKind::Stale | AttackerKind::Truncator => stale_safe_object(),
            AttackerKind::Equivocator => equivocating_safe_object(forged),
        }
    }

    /// Builds this attacker against the regular protocol.
    pub fn build_regular<V: Value>(
        self,
        cfg: StorageConfig,
        forged: V,
    ) -> Box<dyn Automaton<Msg<V>>> {
        match self {
            AttackerKind::Mute => Box::new(vrr_sim::Mute),
            AttackerKind::Inflator => inflating_regular_object(forged),
            AttackerKind::Conflicter => conflicting_regular_object(cfg, forged),
            AttackerKind::Stale => stale_regular_object(),
            AttackerKind::Equivocator => equivocating_regular_object(forged),
            AttackerKind::Truncator => truncating_regular_object(),
        }
    }
}

fn forged_tsval<V: Value>(forged: V) -> TsVal<V> {
    TsVal::new(FORGED_TS, forged)
}

/// A matrix accusing every object of having reported reader timestamps far
/// beyond anything issued — triggers `conflict(i, k)` for every `i`.
fn accusing_matrix(cfg: StorageConfig) -> TsrMatrix {
    let mut m = TsrMatrix::empty();
    for i in 0..cfg.s {
        let row: BTreeMap<usize, u64> = (0..cfg.readers).map(|j| (j, u64::MAX / 2)).collect();
        m.set_row(i, row);
    }
    m
}

/// Safe-protocol attacker: read replies carry a phantom high-timestamp pair.
///
/// The reader's `safe(c)` predicate starves it of the `b + 1` confirmations
/// it would need, and `RespondedWO` eventually eliminates it (Figure 4
/// lines 27–28) — the read stays correct and 2-round.
pub fn inflating_safe_object<V: Value>(forged: V) -> Box<dyn Automaton<Msg<V>>> {
    Box::new(Tamper::new(SafeObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckSafe { round, tsr, .. } => Msg::ReadAckSafe {
                round,
                tsr,
                pw: forged_tsval(forged.clone()),
                w: WTuple::new(forged_tsval(forged.clone()), TsrMatrix::empty()),
            },
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// Safe-protocol attacker: phantom candidate whose matrix accuses every
/// object of future reader timestamps, provoking round-1 conflicts.
///
/// Lemma 1 says correct objects never conflict; the conflict graph isolates
/// this attacker, and its candidate dies by elimination — at the cost of a
/// short delay in round 1, never of correctness.
pub fn conflicting_safe_object<V: Value>(
    cfg: StorageConfig,
    forged: V,
) -> Box<dyn Automaton<Msg<V>>> {
    Box::new(Tamper::new(SafeObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckSafe { round, tsr, .. } => Msg::ReadAckSafe {
                round,
                tsr,
                pw: forged_tsval(forged.clone()),
                w: WTuple::new(forged_tsval(forged.clone()), accusing_matrix(cfg)),
            },
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// Safe-protocol attacker: answers every read with the initial state `σ0`,
/// pretending no write ever happened (the run5 move of Figure 1 in
/// reverse).
pub fn stale_safe_object<V: Value>() -> Box<dyn Automaton<Msg<V>>> {
    Box::new(Tamper::new(SafeObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckSafe { round, tsr, .. } => Msg::ReadAckSafe {
                round,
                tsr,
                pw: TsVal::bottom(),
                w: WTuple::initial(),
            },
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// Safe-protocol attacker: alternates phantom and honest answers, trying to
/// feed the two read rounds inconsistent views.
pub fn equivocating_safe_object<V: Value>(forged: V) -> Box<dyn Automaton<Msg<V>>> {
    let mut flip = false;
    Box::new(Tamper::new(SafeObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckSafe { round, tsr, pw, w } => {
                flip = !flip;
                if flip {
                    Msg::ReadAckSafe {
                        round,
                        tsr,
                        pw: forged_tsval(forged.clone()),
                        w: WTuple::new(forged_tsval(forged.clone()), TsrMatrix::empty()),
                    }
                } else {
                    Msg::ReadAckSafe { round, tsr, pw, w }
                }
            }
            other => other,
        };
        vec![(to, msg)]
    }))
}

fn forged_history_entry<V: Value>(forged: V) -> (Timestamp, HistEntry<V>) {
    let tsval = forged_tsval(forged);
    (
        FORGED_TS,
        HistEntry {
            pw: tsval.clone(),
            w: Some(WTuple::new(tsval, TsrMatrix::empty())),
        },
    )
}

/// Regular-protocol attacker: splices a phantom entry at an enormous
/// timestamp into every reported history.
pub fn inflating_regular_object<V: Value>(forged: V) -> Box<dyn Automaton<Msg<V>>> {
    Box::new(Tamper::new(RegularObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckRegular {
                round,
                tsr,
                mut history,
            } => {
                let (ts, e) = forged_history_entry(forged.clone());
                history.insert(ts, e);
                Msg::ReadAckRegular {
                    round,
                    tsr,
                    history,
                }
            }
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// Regular-protocol attacker: phantom entry with an accusing matrix
/// (the regular-protocol twin of [`conflicting_safe_object`]).
pub fn conflicting_regular_object<V: Value>(
    cfg: StorageConfig,
    forged: V,
) -> Box<dyn Automaton<Msg<V>>> {
    Box::new(Tamper::new(RegularObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckRegular {
                round,
                tsr,
                mut history,
            } => {
                let tsval = forged_tsval(forged.clone());
                history.insert(
                    FORGED_TS,
                    HistEntry {
                        pw: tsval.clone(),
                        w: Some(WTuple::new(tsval, accusing_matrix(cfg))),
                    },
                );
                Msg::ReadAckRegular {
                    round,
                    tsr,
                    history,
                }
            }
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// Regular-protocol attacker: lies about suffixes — every read ACK claims
/// an *empty* history, as if ack-driven GC had already truncated every
/// entry the reader asked about (including entries the reader's own acks
/// can not possibly have released).
///
/// Correct readers absorb this: an object reporting no entry at a
/// candidate's position merely counts toward `invalid(c)`, never toward
/// `safe(c)`, so the attacker can neither confirm phantoms nor starve a
/// genuine candidate of its `b + 1` confirmations from correct objects
/// (which retain everything at or above the true ack floor minus the
/// window).
pub fn truncating_regular_object<V: Value>() -> Box<dyn Automaton<Msg<V>>> {
    Box::new(Tamper::new(RegularObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckRegular { round, tsr, .. } => Msg::ReadAckRegular {
                round,
                tsr,
                history: crate::types::History::empty(),
            },
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// Regular-protocol attacker: reports the pristine initial history forever.
pub fn stale_regular_object<V: Value>() -> Box<dyn Automaton<Msg<V>>> {
    Box::new(Tamper::new(RegularObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckRegular { round, tsr, .. } => Msg::ReadAckRegular {
                round,
                tsr,
                history: crate::types::History::initial(),
            },
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// Regular-protocol attacker: alternates phantom-spliced and honest
/// histories.
pub fn equivocating_regular_object<V: Value>(forged: V) -> Box<dyn Automaton<Msg<V>>> {
    let mut flip = false;
    Box::new(Tamper::new(RegularObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            Msg::ReadAckRegular {
                round,
                tsr,
                mut history,
            } => {
                flip = !flip;
                if flip {
                    let (ts, e) = forged_history_entry(forged.clone());
                    history.insert(ts, e);
                }
                Msg::ReadAckRegular {
                    round,
                    tsr,
                    history,
                }
            }
            other => other,
        };
        vec![(to, msg)]
    }))
}

#[cfg(test)]
mod tests {
    use vrr_sim::World;

    use super::*;
    use crate::harness::{
        corrupt_object, run_read, run_write, RegisterProtocol, RegularProtocol, SafeProtocol,
    };

    const FORGED: u64 = 0xDEAD;

    /// Every attacker, against both protocols, with b = 1: writes and reads
    /// must stay correct and 2-round.
    #[test]
    fn single_attacker_cannot_break_safe_protocol() {
        for kind in AttackerKind::ALL {
            let mut w: World<Msg<u64>> = World::new(3);
            let cfg = StorageConfig::optimal(1, 1, 1);
            let dep = RegisterProtocol::<u64>::deploy(&SafeProtocol, cfg, &mut w);
            w.start();
            corrupt_object(&dep, &mut w, 1, kind.build_safe(cfg, FORGED));

            for k in 1..=3u64 {
                run_write(&SafeProtocol, &dep, &mut w, k * 7);
                let rd = run_read::<u64, _>(&SafeProtocol, &dep, &mut w, 0);
                assert_eq!(rd.value, Some(k * 7), "attacker {kind:?} corrupted a read");
                assert_eq!(rd.rounds, 2, "attacker {kind:?} inflated round count");
            }
        }
    }

    #[test]
    fn single_attacker_cannot_break_regular_protocol() {
        for kind in AttackerKind::ALL {
            for protocol in [RegularProtocol::full(), RegularProtocol::optimized()] {
                let mut w: World<Msg<u64>> = World::new(5);
                let cfg = StorageConfig::optimal(1, 1, 1);
                let dep = RegisterProtocol::<u64>::deploy(&protocol, cfg, &mut w);
                w.start();
                corrupt_object(&dep, &mut w, 0, kind.build_regular(cfg, FORGED));

                for k in 1..=3u64 {
                    run_write(&protocol, &dep, &mut w, k * 7);
                    let rd = run_read::<u64, _>(&protocol, &dep, &mut w, 0);
                    assert_eq!(
                        rd.value,
                        Some(k * 7),
                        "attacker {kind:?} corrupted a {} read",
                        RegisterProtocol::<u64>::name(&protocol),
                    );
                }
            }
        }
    }

    #[test]
    fn attacker_with_larger_b_budget_also_fails() {
        // t = b = 2: two inflators at once.
        let mut w: World<Msg<u64>> = World::new(11);
        let cfg = StorageConfig::optimal(2, 2, 1); // S = 7
        let dep = RegisterProtocol::<u64>::deploy(&SafeProtocol, cfg, &mut w);
        w.start();
        corrupt_object(
            &dep,
            &mut w,
            2,
            AttackerKind::Inflator.build_safe(cfg, FORGED),
        );
        corrupt_object(
            &dep,
            &mut w,
            5,
            AttackerKind::Conflicter.build_safe(cfg, FORGED),
        );
        run_write(&SafeProtocol, &dep, &mut w, 99u64);
        let rd = run_read::<u64, _>(&SafeProtocol, &dep, &mut w, 0);
        assert_eq!(rd.value, Some(99));
    }
}
