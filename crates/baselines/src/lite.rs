//! Shared substrate of the baseline protocols: a base object holding a
//! single timestamp–value pair per field, and the message vocabulary for
//! one-round writes/reads plus the two-phase write of the passive baseline.
//!
//! Unlike the paper's objects (Figure 3), these objects never store reader
//! timestamps — baseline readers do not modify object state, which is
//! exactly the regime in which [ACKM04] proved reads need `b + 1` rounds.

use vrr_sim::{Automaton, Context, ProcessId, SimMessage};

use vrr_core::{Timestamp, TsVal, Value};

/// Messages of the baseline protocols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiteMsg<V> {
    /// First write phase (passive baseline only): stage the pair.
    PreWrite {
        /// The staged pair.
        pair: TsVal<V>,
    },
    /// Ack for [`LiteMsg::PreWrite`].
    PreWriteAck {
        /// Echo of the staged timestamp.
        ts: Timestamp,
    },
    /// Write (single-phase protocols) or second write phase (passive).
    Write {
        /// The written pair.
        pair: TsVal<V>,
    },
    /// Ack for [`LiteMsg::Write`].
    WriteAck {
        /// Echo of the written timestamp.
        ts: Timestamp,
    },
    /// Read request; `nonce` distinguishes rounds and operations.
    Read {
        /// Fresh per-round nonce.
        nonce: u64,
    },
    /// Read reply carrying both object fields.
    ReadAck {
        /// Echo of the request nonce.
        nonce: u64,
        /// The staged (`pw`) pair.
        pw: TsVal<V>,
        /// The written (`w`) pair.
        w: TsVal<V>,
    },
}

impl<V: Value> SimMessage for LiteMsg<V> {
    fn wire_size(&self) -> usize {
        1 + match self {
            LiteMsg::PreWrite { pair } | LiteMsg::Write { pair } => pair.wire_size(),
            LiteMsg::PreWriteAck { .. } | LiteMsg::WriteAck { .. } => 8,
            LiteMsg::Read { .. } => 8,
            LiteMsg::ReadAck { pw, w, .. } => 8 + pw.wire_size() + w.wire_size(),
        }
    }
}

/// A baseline base object: two timestamp–value registers (`pw`, `w`) with
/// monotone updates. Reads are pure: they never change object state.
#[derive(Clone, Debug)]
pub struct LiteObject<V> {
    pw: TsVal<V>,
    w: TsVal<V>,
}

impl<V: Value> LiteObject<V> {
    /// A fresh object holding `⟨0, ⊥⟩` in both fields.
    pub fn new() -> Self {
        LiteObject {
            pw: TsVal::bottom(),
            w: TsVal::bottom(),
        }
    }

    /// The staged pair.
    pub fn pw(&self) -> &TsVal<V> {
        &self.pw
    }

    /// The written pair.
    pub fn w(&self) -> &TsVal<V> {
        &self.w
    }
}

impl<V: Value> Default for LiteObject<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> Automaton<LiteMsg<V>> for LiteObject<V> {
    fn on_message(&mut self, from: ProcessId, msg: LiteMsg<V>, ctx: &mut Context<'_, LiteMsg<V>>) {
        match msg {
            LiteMsg::PreWrite { pair } => {
                let ts = pair.ts;
                if pair.ts > self.pw.ts {
                    self.pw = pair;
                }
                ctx.send(from, LiteMsg::PreWriteAck { ts });
            }
            LiteMsg::Write { pair } => {
                let ts = pair.ts;
                if pair.ts > self.w.ts {
                    if pair.ts > self.pw.ts {
                        self.pw = pair.clone();
                    }
                    self.w = pair;
                }
                ctx.send(from, LiteMsg::WriteAck { ts });
            }
            LiteMsg::Read { nonce } => {
                ctx.send(
                    from,
                    LiteMsg::ReadAck {
                        nonce,
                        pw: self.pw.clone(),
                        w: self.w.clone(),
                    },
                );
            }
            LiteMsg::PreWriteAck { .. } | LiteMsg::WriteAck { .. } | LiteMsg::ReadAck { .. } => {}
        }
    }

    fn label(&self) -> &'static str {
        "lite-object"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(obj: &mut LiteObject<u64>, msg: LiteMsg<u64>) -> Vec<(ProcessId, LiteMsg<u64>)> {
        let mut out = Vec::new();
        let mut ctx = Context::new(ProcessId(0), &mut out);
        obj.on_message(ProcessId(7), msg, &mut ctx);
        out
    }

    fn pair(ts: u64, v: u64) -> TsVal<u64> {
        TsVal::new(Timestamp(ts), v)
    }

    #[test]
    fn writes_are_monotone_and_always_acked() {
        let mut obj = LiteObject::new();
        assert_eq!(
            step(&mut obj, LiteMsg::Write { pair: pair(2, 20) }).len(),
            1
        );
        let out = step(&mut obj, LiteMsg::Write { pair: pair(1, 10) });
        assert_eq!(
            out.len(),
            1,
            "stale writes still acked (idempotent protocol)"
        );
        assert_eq!(
            obj.w().value,
            Some(20),
            "stale write must not regress state"
        );
    }

    #[test]
    fn write_also_advances_pw() {
        let mut obj = LiteObject::new();
        step(&mut obj, LiteMsg::Write { pair: pair(3, 30) });
        assert_eq!(
            obj.pw().ts,
            Timestamp(3),
            "w-write implies the pair was pre-written"
        );
    }

    #[test]
    fn prewrite_stages_without_committing() {
        let mut obj = LiteObject::new();
        step(&mut obj, LiteMsg::PreWrite { pair: pair(1, 10) });
        assert_eq!(obj.pw().value, Some(10));
        assert_eq!(obj.w().value, None, "w untouched by pre-write");
    }

    #[test]
    fn reads_are_pure() {
        let mut obj = LiteObject::new();
        step(&mut obj, LiteMsg::Write { pair: pair(1, 10) });
        let before = obj.clone();
        let out = step(&mut obj, LiteMsg::Read { nonce: 9 });
        match &out[..] {
            [(_, LiteMsg::ReadAck { nonce: 9, w, .. })] => assert_eq!(w.value, Some(10)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(obj.pw(), before.pw());
        assert_eq!(obj.w(), before.w());
    }
}
