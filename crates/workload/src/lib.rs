//! # vrr-workload: scenario generation and execution for experiments
//!
//! Experiments over the `vrr` protocols share three ingredients:
//!
//! * a [`Schedule`] of operations (random interleavings of writes and
//!   reads, deterministic per seed — [`generate`]);
//! * a [`FaultPlan`] assigning crashes and Byzantine behaviours within the
//!   `(t, b)` budget;
//! * a runner ([`run_schedule`]) that executes the schedule against any
//!   [`vrr_core::RegisterProtocol`] in the deterministic simulator and
//!   produces a [`vrr_checker::OpHistory`] plus round-count statistics.
//!
//! ```
//! use vrr_core::{SafeProtocol, StorageConfig};
//! use vrr_workload::{generate, run_schedule, safe_corruptor, FaultPlan,
//!                    LatencyKind, ScheduleParams};
//!
//! let cfg = StorageConfig::optimal(1, 1, 1);
//! let schedule = generate(ScheduleParams::sequential(3, 3, 1, 42));
//! let out = run_schedule(&SafeProtocol, cfg, &schedule, &FaultPlan::none(),
//!                        LatencyKind::Unit, 42, &safe_corruptor);
//! assert!(out.all_live());
//! assert!(vrr_checker::check_safety(&out.history).is_ok());
//! ```

#![warn(missing_docs)]

mod faults;
mod keys;
mod monitor;
mod runner;
mod schedule;
pub mod soak;
mod sweep;

pub use faults::FaultPlan;
pub use keys::ZipfianKeys;
pub use monitor::{run_monitored, safe_object_monotonicity, InvariantMonitor, MonitorViolation};
pub use runner::{
    regular_corruptor, run_schedule, safe_corruptor, Corruptor, LatencyKind, RunOutcome, SimCase,
};
pub use schedule::{generate, ClientPlan, PlannedOp, Schedule, ScheduleParams};
pub use sweep::{grid, SweepPoint};
