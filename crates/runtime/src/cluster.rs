//! A thread-per-process host for `vrr` automata.
//!
//! The same deterministic automata that run under the simulator run here on
//! real OS threads with real (optionally delayed) message passing — the
//! substrate for wall-clock benchmarks and the networked examples. One
//! router thread moves messages; each process is a thread draining its
//! mailbox.

use std::any::Any;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use vrr_sim::{Automaton, Context, ProcessId};

use crate::router::{spawn_router, LinkPolicy, RoutedMsg, RouterCmd};

type InvokeFn<M> = Box<dyn FnOnce(&mut dyn Any, &mut Context<'_, M>) + Send>;
type WatchFn = Box<dyn FnMut(&dyn Any) -> bool + Send>;

enum NodeCmd<M> {
    Deliver { from: ProcessId, msg: M },
    Invoke(InvokeFn<M>),
    Watch(WatchFn),
    Crash,
    Shutdown,
}

struct Node<M> {
    tx: Sender<NodeCmd<M>>,
    handle: Option<JoinHandle<()>>,
}

/// A running cluster of automata on threads.
///
/// Spawn processes with [`Cluster::spawn`], connect the mailboxes by
/// calling [`Cluster::seal`] once all processes exist, then drive clients
/// with [`Cluster::invoke`] / [`Cluster::watch`]. Dropping the cluster
/// shuts every thread down.
///
/// # Examples
///
/// ```
/// use vrr_runtime::{Cluster, NoDelay};
/// use vrr_sim::{from_fn, Context, ProcessId};
///
/// let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
/// let echo = cluster.spawn(from_fn(|from, n: u64, ctx: &mut Context<'_, u64>| {
///     ctx.send(from, n + 1);
/// }));
/// # let _ = echo;
/// cluster.seal();
/// ```
pub struct Cluster<M: Send + 'static> {
    nodes: Arc<Mutex<Vec<Node<M>>>>,
    router_tx: Sender<RouterCmd<M>>,
    router_handle: Option<JoinHandle<()>>,
    sealed: bool,
}

impl<M: Send + 'static> Cluster<M> {
    /// Creates a cluster whose links obey `policy`.
    pub fn new(policy: Box<dyn LinkPolicy<M>>) -> Self {
        let nodes: Arc<Mutex<Vec<Node<M>>>> = Arc::new(Mutex::new(Vec::new()));
        let nodes_for_router = nodes.clone();
        let (router_tx, router_handle) = spawn_router(policy, move |m: RoutedMsg<M>| {
            let nodes = nodes_for_router.lock();
            if let Some(node) = nodes.get(m.to.index()) {
                let _ = node.tx.send(NodeCmd::Deliver {
                    from: m.from,
                    msg: m.msg,
                });
            }
        });
        Cluster {
            nodes,
            router_tx,
            router_handle: Some(router_handle),
            sealed: false,
        }
    }

    /// Spawns a process thread running `automaton`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Cluster::seal`].
    pub fn spawn(&mut self, automaton: Box<dyn Automaton<M>>) -> ProcessId {
        assert!(
            !self.sealed,
            "spawn all processes before sealing the cluster"
        );
        let mut nodes = self.nodes.lock();
        let id = ProcessId(nodes.len());
        let (tx, rx): (Sender<NodeCmd<M>>, Receiver<NodeCmd<M>>) = unbounded();
        let router_tx = self.router_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("vrr-node-{}", id.index()))
            .spawn(move || node_main(id, automaton, rx, router_tx))
            .expect("spawn node thread");
        nodes.push(Node {
            tx,
            handle: Some(handle),
        });
        id
    }

    /// Marks the topology complete. (Nodes discover each other lazily via
    /// the router, so this only guards against racy late spawns.)
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Number of spawned processes.
    pub fn len(&self) -> usize {
        self.nodes.lock().len()
    }

    /// Whether no process was spawned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs `f` on the concrete automaton of `pid` inside its thread, with
    /// a context whose sends go through the router. Blocks for the result.
    ///
    /// # Panics
    ///
    /// Panics if `pid`'s automaton is not an `A` or the node is gone.
    pub fn invoke<A: Automaton<M>, R: Send + 'static>(
        &self,
        pid: ProcessId,
        f: impl FnOnce(&mut A, &mut Context<'_, M>) -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = bounded(1);
        let boxed: InvokeFn<M> = Box::new(move |any, ctx| {
            let a = any
                .downcast_mut::<A>()
                .unwrap_or_else(|| panic!("node is not a {}", std::any::type_name::<A>()));
            let _ = tx.send(f(a, ctx));
        });
        self.nodes.lock()[pid.index()]
            .tx
            .send(NodeCmd::Invoke(boxed))
            .expect("node thread alive");
        rx.recv().expect("node executed the invoke")
    }

    /// Registers a watcher on `pid`: after every step, `check` runs against
    /// the automaton; the first `Some(r)` is delivered on the returned
    /// channel. Used to await operation completion without polling.
    pub fn watch<A: Automaton<M>, R: Send + 'static>(
        &self,
        pid: ProcessId,
        mut check: impl FnMut(&A) -> Option<R> + Send + 'static,
    ) -> Receiver<R> {
        let (tx, rx) = bounded(1);
        let boxed: WatchFn = Box::new(move |any| {
            let a = any
                .downcast_ref::<A>()
                .unwrap_or_else(|| panic!("node is not a {}", std::any::type_name::<A>()));
            match check(a) {
                Some(r) => {
                    let _ = tx.send(r);
                    true
                }
                None => false,
            }
        });
        self.nodes.lock()[pid.index()]
            .tx
            .send(NodeCmd::Watch(boxed))
            .expect("node thread alive");
        rx
    }

    /// Crashes `pid`: it stops processing deliveries (its thread idles).
    pub fn crash(&self, pid: ProcessId) {
        let _ = self.nodes.lock()[pid.index()].tx.send(NodeCmd::Crash);
    }

    /// Injects a message from `from` to `to` through the router (external
    /// stimulus, like the simulator's `send_external`).
    pub fn send_external(&self, from: ProcessId, to: ProcessId, msg: M) {
        let _ = self
            .router_tx
            .send(RouterCmd::Send(RoutedMsg { from, to, msg }));
    }
}

impl<M: Send + 'static> Drop for Cluster<M> {
    fn drop(&mut self) {
        {
            let nodes = self.nodes.lock();
            for node in nodes.iter() {
                let _ = node.tx.send(NodeCmd::Shutdown);
            }
        }
        let _ = self.router_tx.send(RouterCmd::Shutdown);
        let mut nodes = self.nodes.lock();
        for node in nodes.iter_mut() {
            if let Some(h) = node.handle.take() {
                let _ = h.join();
            }
        }
        drop(nodes);
        if let Some(h) = self.router_handle.take() {
            let _ = h.join();
        }
    }
}

impl<M: Send + 'static> std::fmt::Debug for Cluster<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.len())
            .finish()
    }
}

fn node_main<M: Send + 'static>(
    me: ProcessId,
    mut automaton: Box<dyn Automaton<M>>,
    rx: Receiver<NodeCmd<M>>,
    router_tx: Sender<RouterCmd<M>>,
) {
    let mut crashed = false;
    let mut watchers: Vec<WatchFn> = Vec::new();

    // The paper's Init step.
    let mut outbox: Vec<(ProcessId, M)> = Vec::new();
    {
        let mut ctx = Context::new(me, &mut outbox);
        automaton.on_start(&mut ctx);
    }
    flush(me, &mut outbox, &router_tx);

    while let Ok(cmd) = rx.recv() {
        match cmd {
            NodeCmd::Deliver { from, msg } => {
                if crashed {
                    continue;
                }
                {
                    let mut ctx = Context::new(me, &mut outbox);
                    automaton.on_message(from, msg, &mut ctx);
                }
                flush(me, &mut outbox, &router_tx);
                run_watchers(&mut watchers, &*automaton);
            }
            NodeCmd::Invoke(f) => {
                if crashed {
                    continue; // reply channel drops; caller sees a panic
                }
                {
                    let mut ctx = Context::new(me, &mut outbox);
                    let any: &mut dyn Any = &mut *automaton;
                    f(any, &mut ctx);
                }
                flush(me, &mut outbox, &router_tx);
                run_watchers(&mut watchers, &*automaton);
            }
            NodeCmd::Watch(mut w) => {
                let any: &dyn Any = &*automaton;
                if !w(any) {
                    watchers.push(w);
                }
            }
            NodeCmd::Crash => crashed = true,
            NodeCmd::Shutdown => break,
        }
    }
}

fn flush<M: Send + 'static>(
    me: ProcessId,
    outbox: &mut Vec<(ProcessId, M)>,
    router_tx: &Sender<RouterCmd<M>>,
) {
    for (to, msg) in outbox.drain(..) {
        let _ = router_tx.send(RouterCmd::Send(RoutedMsg { from: me, to, msg }));
    }
}

fn run_watchers<M>(watchers: &mut Vec<WatchFn>, automaton: &dyn Automaton<M>) {
    let any: &dyn Any = automaton;
    watchers.retain_mut(|w| !w(any));
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use vrr_sim::from_fn;

    use super::*;
    use crate::router::NoDelay;

    /// Counts the values it receives.
    struct Counter {
        total: u64,
        seen: u32,
    }

    impl Automaton<u64> for Counter {
        fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.total += msg;
            self.seen += 1;
        }
    }

    #[test]
    fn deliver_and_watch() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        let doubler = cluster.spawn(from_fn(move |from, n: u64, ctx: &mut Context<'_, u64>| {
            ctx.send(from, n * 2);
        }));
        cluster.seal();

        let done = cluster.watch(counter, |c: &Counter| (c.seen >= 3).then_some(c.total));
        for i in 1..=3u64 {
            cluster.send_external(counter, doubler, i);
        }
        let total = done
            .recv_timeout(Duration::from_secs(5))
            .expect("watch fires");
        assert_eq!(total, 12, "2 + 4 + 6");
    }

    /// A client automaton driven purely by invoke.
    struct Pinger {
        target: ProcessId,
        sent: u32,
    }

    impl Automaton<u64> for Pinger {
        fn on_message(&mut self, _from: ProcessId, _msg: u64, _ctx: &mut Context<'_, u64>) {}
    }

    #[test]
    fn invoke_runs_in_thread_and_sends() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        let pinger = cluster.spawn(Box::new(Pinger {
            target: counter,
            sent: 0,
        }));
        cluster.seal();

        let done = cluster.watch(counter, |c: &Counter| (c.seen >= 1).then_some(c.total));
        let sent_count = cluster.invoke(pinger, |p: &mut Pinger, ctx| {
            ctx.send(p.target, 41);
            p.sent += 1;
            p.sent
        });
        assert_eq!(sent_count, 1, "invoke returns the closure's result");
        assert_eq!(done.recv_timeout(Duration::from_secs(5)).unwrap(), 41);
    }

    #[test]
    fn crash_stops_processing() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();
        cluster.crash(counter);
        cluster.send_external(counter, counter, 5);
        std::thread::sleep(Duration::from_millis(50));
        // The watcher registered after the crash still inspects state
        // (crash stops *processing*, not introspection).
        let rx = cluster.watch(counter, |c: &Counter| Some(c.seen));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 0);
    }
}
