//! Byzantine behaviours against the baseline protocols.

use vrr_sim::{Automaton, Tamper};

use vrr_core::{Timestamp, TsVal, Value};

use crate::lite::{LiteMsg, LiteObject};

/// Base timestamp of forged pairs: far above anything a real run writes.
const FORGE_BASE: u64 = u64::MAX / 2;

/// An object that stays *silent* on reads until it sees read nonce
/// `lie_from_nonce`, then answers every read with a stable fabricated pair
/// (timestamp `FORGE_BASE + lie_from_nonce`, so distinctly-ranked forgers
/// produce distinct fakes with later ranks on top).
///
/// Silence before activation matters: an object that first answers honestly
/// and then lies is caught by the reader's equivocation rule, while silence
/// is indistinguishable from slowness. Ranked forgers then reveal their
/// fakes one per round, driving the passive baseline to its worst case:
/// each round the freshest fake tops the claim order and earns a challenge
/// round, until all `b` forgers are suspected — `b + 1` rounds total (the
/// bound of \[ACKM04\] that the paper's 2-round protocol beats).
pub fn serial_forger<V: Value>(lie_from_nonce: u64, fake: V) -> Box<dyn Automaton<LiteMsg<V>>> {
    Box::new(Tamper::new(LiteObject::<V>::new(), move |to, msg| {
        match msg {
            LiteMsg::ReadAck { nonce, .. } => {
                if nonce >= lie_from_nonce {
                    let pair = TsVal::new(Timestamp(FORGE_BASE + lie_from_nonce), fake.clone());
                    vec![(
                        to,
                        LiteMsg::ReadAck {
                            nonce,
                            pw: pair.clone(),
                            w: pair,
                        },
                    )]
                } else {
                    vec![] // lurk: indistinguishable from a slow object
                }
            }
            other => vec![(to, other)],
        }
    }))
}

/// An object that inflates its write field on every read reply with a
/// per-reply *fresh* timestamp, never repeating a claim.
pub fn restless_forger<V: Value>(fake: V) -> Box<dyn Automaton<LiteMsg<V>>> {
    let mut counter = 0u64;
    Box::new(Tamper::new(LiteObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            LiteMsg::ReadAck { nonce, pw, .. } => {
                counter += 1;
                LiteMsg::ReadAck {
                    nonce,
                    pw,
                    w: TsVal::new(Timestamp(FORGE_BASE + counter), fake.clone()),
                }
            }
            other => other,
        };
        vec![(to, msg)]
    }))
}

/// An object that denies all writes, always reporting `⟨0, ⊥⟩`.
pub fn denier<V: Value>() -> Box<dyn Automaton<LiteMsg<V>>> {
    Box::new(Tamper::new(LiteObject::<V>::new(), move |to, msg| {
        let msg = match msg {
            LiteMsg::ReadAck { nonce, .. } => LiteMsg::ReadAck {
                nonce,
                pw: TsVal::bottom(),
                w: TsVal::bottom(),
            },
            other => other,
        };
        vec![(to, msg)]
    }))
}

#[cfg(test)]
mod tests {
    use vrr_core::{run_read, run_write, Deployment, RegisterProtocol, StorageConfig};
    use vrr_sim::World;

    use super::*;
    use crate::passive::PassiveProtocol;

    fn deploy() -> (World<LiteMsg<u64>>, PassiveProtocol, Deployment) {
        let mut w = World::new(1);
        let cfg = StorageConfig::optimal(2, 2, 1); // S = 7
        let dep = RegisterProtocol::<u64>::deploy(&PassiveProtocol, cfg, &mut w);
        w.start();
        (w, PassiveProtocol, dep)
    }

    #[test]
    fn denier_cannot_erase_a_write() {
        let (mut w, p, dep) = deploy();
        w.set_byzantine(dep.objects[0], denier::<u64>());
        w.set_byzantine(dep.objects[1], denier::<u64>());
        run_write(&p, &dep, &mut w, 5u64);
        let rd = run_read::<u64, _>(&p, &dep, &mut w, 0);
        assert_eq!(rd.value, Some(5));
    }

    #[test]
    fn restless_forger_claims_never_confirm() {
        let (mut w, p, dep) = deploy();
        w.set_byzantine(dep.objects[0], restless_forger(666u64));
        run_write(&p, &dep, &mut w, 5u64);
        let rd = run_read::<u64, _>(&p, &dep, &mut w, 0);
        assert_eq!(
            rd.value,
            Some(5),
            "fresh fakes each reply never gather support"
        );
        assert!(rd.rounds <= 3, "restless forging is self-defeating");
    }
}
