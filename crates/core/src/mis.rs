//! Conflict-free responder subsets.
//!
//! The readers' first round terminates when "∃ Resp1OK ⊆ Resp1 :
//! (|Resp1OK| ≥ S − t) ∧ (∀ i,k ∈ Resp1OK : ¬conflict(i,k))" (Figure 4
//! line 11 / Figure 6 line 11). Conflicts form a graph over responders, and
//! the existential asks for an independent set of size ≥ S − t. Lemma 1
//! guarantees the correct responders are pairwise conflict-free, so such a
//! set always exists eventually; this module decides the existential
//! *exactly* (branch-and-bound over bitmasks), which is cheap at realistic
//! object counts (S ≤ 64).

/// Finds a maximum pairwise-conflict-free subset of `members`.
///
/// `conflict(i, k)` is the (possibly asymmetric) conflict predicate; a pair
/// is incompatible when either direction conflicts, and a self-conflicting
/// member can never be selected (the `∀ i,k` in the paper ranges over `i = k`
/// too). Returns the chosen members in ascending order.
///
/// # Panics
///
/// Panics if `members.len() > 64` (beyond any meaningful deployment size).
pub fn max_conflict_free(
    members: &[usize],
    mut conflict: impl FnMut(usize, usize) -> bool,
) -> Vec<usize> {
    let m = members.len();
    assert!(
        m <= 64,
        "conflict-free search supports at most 64 responders"
    );
    if m == 0 {
        return Vec::new();
    }

    // Adjacency bitmasks over member positions; self-loops exclude a vertex.
    let mut adj = vec![0u64; m];
    let mut eligible: u64 = 0;
    for (a, &ia) in members.iter().enumerate() {
        if !conflict(ia, ia) {
            eligible |= 1 << a;
        }
    }
    for (a, &ia) in members.iter().enumerate() {
        for (b, &ib) in members.iter().enumerate().skip(a + 1) {
            if conflict(ia, ib) || conflict(ib, ia) {
                adj[a] |= 1 << b;
                adj[b] |= 1 << a;
            }
        }
    }

    let mut best: u64 = 0;
    search(eligible, 0, &adj, &mut best);

    let mut out: Vec<usize> = (0..m)
        .filter(|&a| best & (1 << a) != 0)
        .map(|a| members[a])
        .collect();
    out.sort_unstable();
    out
}

/// Convenience wrapper: does a conflict-free subset of size ≥ `need` exist?
/// Returns it if so.
pub fn conflict_free_of_size(
    members: &[usize],
    conflict: impl FnMut(usize, usize) -> bool,
    need: usize,
) -> Option<Vec<usize>> {
    let best = max_conflict_free(members, conflict);
    (best.len() >= need).then_some(best)
}

fn search(candidates: u64, chosen: u64, adj: &[u64], best: &mut u64) {
    let chosen_count = chosen.count_ones();
    if chosen_count + candidates.count_ones() <= best.count_ones() {
        return; // cannot beat the incumbent
    }
    if candidates == 0 {
        if chosen_count > best.count_ones() {
            *best = chosen;
        }
        return;
    }

    // Pivot on the candidate with the most remaining neighbours: including or
    // excluding it prunes the search fastest.
    let mut pivot = candidates.trailing_zeros() as usize;
    let mut pivot_deg = 0;
    let mut rest = candidates;
    while rest != 0 {
        let v = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let deg = (adj[v] & candidates).count_ones();
        if deg > pivot_deg {
            pivot_deg = deg;
            pivot = v;
        }
    }

    if pivot_deg == 0 {
        // No internal edges remain: take everything.
        let final_set = chosen | candidates;
        if final_set.count_ones() > best.count_ones() {
            *best = final_set;
        }
        return;
    }

    let bit = 1u64 << pivot;
    // Branch 1: include the pivot (drops its neighbours).
    search(candidates & !bit & !adj[pivot], chosen | bit, adj, best);
    // Branch 2: exclude the pivot.
    search(candidates & !bit, chosen, adj, best);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_conflicts_takes_everyone() {
        let members = [3, 1, 4, 1 + 4, 9];
        let got = max_conflict_free(&members, |_, _| false);
        let mut want = members.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn full_conflicts_take_one() {
        let members = [0, 1, 2, 3];
        let got = max_conflict_free(&members, |i, k| i != k);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn self_conflict_excludes_vertex() {
        let members = [0, 1, 2];
        let got = max_conflict_free(&members, |i, k| i == 1 && k == 1);
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn asymmetric_conflict_still_separates_pair() {
        // Only conflict(0, 1) holds; the pair {0, 1} must still be split
        // because the paper's condition quantifies over ordered pairs.
        let members = [0, 1, 2];
        let got = max_conflict_free(&members, |i, k| i == 0 && k == 1);
        assert_eq!(got.len(), 2);
        assert!(got.contains(&2));
    }

    #[test]
    fn star_graph_keeps_leaves() {
        // Vertex 0 conflicts with all others: drop it, keep the leaves.
        let members: Vec<usize> = (0..8).collect();
        let got = max_conflict_free(&members, |i, k| i == 0 || k == 0);
        assert_eq!(got, (1..8).collect::<Vec<_>>());
    }

    #[test]
    fn two_cliques_pick_larger_side_plus_one() {
        // Members 0..3 form a clique, 3..9 form a clique, no cross edges:
        // best = 1 from the small clique + 1 from the big one? No —
        // independent set picks one vertex per clique: size 2.
        let members: Vec<usize> = (0..9).collect();
        let got = max_conflict_free(&members, |i, k| {
            i != k && ((i < 3 && k < 3) || (i >= 3 && k >= 3))
        });
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn threshold_helper() {
        let members = [0, 1, 2, 3];
        assert!(conflict_free_of_size(&members, |_, _| false, 4).is_some());
        assert!(conflict_free_of_size(&members, |i, k| i != k, 2).is_none());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // Deterministic pseudo-random graphs; compare against exhaustive
        // enumeration for n <= 12.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 2..=12usize {
            for _case in 0..20 {
                let mut edges = vec![false; n * n];
                for i in 0..n {
                    for k in (i + 1)..n {
                        if next() % 100 < 30 {
                            edges[i * n + k] = true;
                            edges[k * n + i] = true;
                        }
                    }
                }
                let members: Vec<usize> = (0..n).collect();
                let fast = max_conflict_free(&members, |i, k| edges[i * n + k]).len();
                // Brute force.
                let mut brute = 0usize;
                'mask: for mask in 0u32..(1 << n) {
                    let size = mask.count_ones() as usize;
                    if size <= brute {
                        continue;
                    }
                    for i in 0..n {
                        if mask & (1 << i) == 0 {
                            continue;
                        }
                        for k in (i + 1)..n {
                            if mask & (1 << k) != 0 && edges[i * n + k] {
                                continue 'mask;
                            }
                        }
                    }
                    brute = size;
                }
                assert_eq!(fast, brute, "n={n} disagreement");
            }
        }
    }
}
