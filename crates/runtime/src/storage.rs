//! A blocking client API for the paper's storage protocols on the thread
//! runtime: deploy a cluster of base-object threads, then `write`/`read`
//! synchronously from test or benchmark code.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use vrr_sim::{Automaton, ProcessId};

use vrr_core::metrics::{self, MetricsSink, Registry};
use vrr_core::regular::{HistoryRetention, RegularObject, RegularReader, RegularTuning};
use vrr_core::safe::{SafeObject, SafeReader, SafeTuning};
use vrr_core::{FastPathStats, Msg, ReadReport, StorageConfig, Value, WriteReport, Writer};

use crate::cluster::Cluster;
use crate::executor::ExecutorStats;
use crate::router::LinkPolicy;

/// Which of the paper's protocols a [`StorageCluster`] runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// §4 safe storage (Figures 2–4).
    Safe,
    /// §5 regular storage, full histories (Figures 2, 5, 6).
    Regular,
    /// §5.1 optimized regular storage (suffix histories + reader cache).
    RegularOptimized,
}

/// A reader-tuning override for a whole deployment, applied to every
/// reader spawned by [`StorageCluster::deploy_with_reader_tuning`] (and
/// its [`crate::ShardedStore`] counterpart). The variant must match the
/// deployment's [`ProtocolKind`].
///
/// The headline use is steering the one-round fast path: the default
/// tunings already enable it (it self-arms only at `S ≥ 2t + 2b + 1`,
/// per [`StorageConfig::fast_read_quorum`]), so this override is for
/// disabling it, or for forcing the fallback path deterministically in
/// benchmarks via an unreachable `fast_threshold`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReaderTuning {
    /// Tuning for [`ProtocolKind::Safe`] readers.
    Safe(SafeTuning),
    /// Tuning for [`ProtocolKind::Regular`] /
    /// [`ProtocolKind::RegularOptimized`] readers.
    Regular(RegularTuning),
}

/// How long a blocking operation may take before the cluster is declared
/// wedged. Generous: operations take milliseconds even under delay
/// policies.
const OP_TIMEOUT: Duration = Duration::from_secs(30);

/// Blocking `WRITE(value)` against `writer`, shared by [`StorageCluster`],
/// [`crate::ShardedStore`] and external hosts (`vrr-net` servers): invoke
/// the write, then await its outcome via a watcher.
///
/// `writer` must host a [`Writer`] automaton spawned on `cluster` (e.g. by
/// [`spawn_group_with`]).
///
/// # Panics
///
/// Panics if the write does not complete within the operation timeout —
/// with at most `t` faulty objects that is a wait-freedom violation.
pub fn blocking_write<V: Value>(
    cluster: &Cluster<Msg<V>>,
    writer: ProcessId,
    value: V,
) -> WriteReport {
    let id = cluster.invoke(writer, move |w: &mut Writer<V>, ctx| {
        w.invoke_write(value, ctx)
    });
    let rx = cluster.watch(writer, move |w: &Writer<V>| {
        w.outcome(id).map(|o| WriteReport {
            ts: o.ts,
            rounds: o.rounds,
        })
    });
    rx.recv_timeout(OP_TIMEOUT)
        .expect("WRITE must complete (wait-freedom)")
}

/// Blocking `READ()` against `reader`, shared by [`StorageCluster`],
/// [`crate::ShardedStore`] and external hosts (`vrr-net` servers).
///
/// `reader` must host the reader automaton matching `kind` (e.g. spawned
/// by [`spawn_group_with`]).
///
/// # Panics
///
/// Panics if the read does not complete within the operation timeout.
pub fn blocking_read<V: Value>(
    cluster: &Cluster<Msg<V>>,
    kind: ProtocolKind,
    reader: ProcessId,
) -> ReadReport<V> {
    match kind {
        ProtocolKind::Safe => {
            let id = cluster.invoke(reader, |r: &mut SafeReader<V>, ctx| r.invoke_read(ctx));
            let rx = cluster.watch(reader, move |r: &SafeReader<V>| {
                r.outcome(id).map(|o| ReadReport {
                    value: o.value.clone(),
                    ts: o.ts,
                    rounds: o.rounds,
                    fast: o.fast,
                })
            });
            rx.recv_timeout(OP_TIMEOUT)
                .expect("READ must complete (wait-freedom)")
        }
        ProtocolKind::Regular | ProtocolKind::RegularOptimized => {
            let id = cluster.invoke(reader, |r: &mut RegularReader<V>, ctx| r.invoke_read(ctx));
            let rx = cluster.watch(reader, move |r: &RegularReader<V>| {
                r.outcome(id).map(|o| ReadReport {
                    value: o.value.clone(),
                    ts: o.ts,
                    rounds: o.rounds,
                    fast: o.fast,
                })
            });
            rx.recv_timeout(OP_TIMEOUT)
                .expect("READ must complete (wait-freedom)")
        }
    }
}

/// One member slot of a register group, in the canonical spawn order every
/// deployment uses: objects `0..cfg.s`, then the writer, then readers
/// `0..cfg.readers`. Because ids are dense in spawn order
/// ([`Cluster::spawn`]), this fixes the pid layout of a group — which is
/// what lets independently started OS processes (`vrr-net` nodes) agree on
/// a global pid space by replaying the same spawn sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupRole {
    /// Base object `s_i`.
    Object(usize),
    /// The single writer.
    Writer,
    /// Reader `r_j`.
    Reader(usize),
}

/// Number of processes one register group occupies: `cfg.s` objects, one
/// writer, `cfg.readers` readers.
pub fn group_span(cfg: StorageConfig) -> usize {
    cfg.s + 1 + cfg.readers
}

/// The [`GroupRole`] of the `idx`-th spawned member of a group.
///
/// # Panics
///
/// Panics if `idx >= group_span(cfg)`.
pub fn group_member(cfg: StorageConfig, idx: usize) -> GroupRole {
    if idx < cfg.s {
        GroupRole::Object(idx)
    } else if idx == cfg.s {
        GroupRole::Writer
    } else if idx < group_span(cfg) {
        GroupRole::Reader(idx - cfg.s - 1)
    } else {
        panic!(
            "member index {idx} out of range for a group of {}",
            group_span(cfg)
        )
    }
}

/// Process ids of one register group spawned by [`spawn_group_with`].
#[derive(Clone, Debug)]
pub struct GroupPids {
    /// The `cfg.s` base objects, in index order.
    pub objects: Vec<ProcessId>,
    /// The writer.
    pub writer: ProcessId,
    /// The `cfg.readers` readers, in index order.
    pub readers: Vec<ProcessId>,
}

/// Spawns the automata of one register group onto `cluster` in the
/// canonical order ([`group_member`]), letting `substitute` replace the
/// automaton of any member — the hook for Byzantine objects *and* for
/// `vrr-net`'s relay stand-ins when a member lives in a different OS
/// process. Returning `None` deploys the honest automaton for the role.
/// Regular objects are deployed with `retention` (ignored by the safe
/// protocol).
///
/// # Panics
///
/// Panics if `tuning` does not match `kind`, or if a
/// [`HistoryRetention::ReaderAck`] policy covers fewer readers than the
/// deployment has.
pub fn spawn_group_with<V: Value>(
    cluster: &mut Cluster<Msg<V>>,
    cfg: StorageConfig,
    kind: ProtocolKind,
    retention: HistoryRetention,
    tuning: Option<ReaderTuning>,
    mut substitute: impl FnMut(GroupRole) -> Option<Box<dyn Automaton<Msg<V>>>>,
) -> GroupPids {
    let safe_tuning = match (kind, tuning) {
        (ProtocolKind::Safe, Some(ReaderTuning::Safe(t))) => t,
        (ProtocolKind::Safe, None) => SafeTuning::default(),
        (ProtocolKind::Safe, Some(other)) => {
            panic!("reader tuning {other:?} does not fit ProtocolKind::Safe")
        }
        _ => SafeTuning::default(),
    };
    let regular_tuning = match (kind, tuning) {
        (
            ProtocolKind::Regular | ProtocolKind::RegularOptimized,
            Some(ReaderTuning::Regular(t)),
        ) => t,
        (ProtocolKind::Regular | ProtocolKind::RegularOptimized, Some(other)) => {
            panic!("reader tuning {other:?} does not fit {kind:?}")
        }
        _ => RegularTuning::default(),
    };
    if let HistoryRetention::ReaderAck { readers, .. } = retention {
        // A policy covering fewer readers than are deployed would let the
        // covered readers' acks truncate entries the un-gated readers
        // still need — exactly the hole the min(acks) floor closes.
        assert!(
            readers >= cfg.readers,
            "ReaderAck must gate on every deployed reader: policy covers \
             {readers}, deployment has {}",
            cfg.readers
        );
    }
    let objects: Vec<ProcessId> = (0..cfg.s)
        .map(|i| -> ProcessId {
            let automaton: Box<dyn Automaton<Msg<V>>> = substitute(GroupRole::Object(i))
                .unwrap_or_else(|| match kind {
                    ProtocolKind::Safe => Box::new(SafeObject::<V>::new()),
                    ProtocolKind::Regular | ProtocolKind::RegularOptimized => {
                        Box::new(RegularObject::<V>::with_retention(retention))
                    }
                });
            cluster.spawn(automaton)
        })
        .collect();
    let writer_automaton = substitute(GroupRole::Writer)
        .unwrap_or_else(|| Box::new(Writer::<V>::new(cfg, objects.clone())));
    let writer = cluster.spawn(writer_automaton);
    let readers: Vec<ProcessId> = (0..cfg.readers)
        .map(|j| {
            let automaton: Box<dyn Automaton<Msg<V>>> = substitute(GroupRole::Reader(j))
                .unwrap_or_else(|| match kind {
                    ProtocolKind::Safe => Box::new(SafeReader::<V>::with_tuning(
                        cfg,
                        j,
                        objects.clone(),
                        safe_tuning,
                    )),
                    ProtocolKind::Regular => Box::new(RegularReader::<V>::with_tuning(
                        cfg,
                        j,
                        objects.clone(),
                        false,
                        regular_tuning,
                    )),
                    ProtocolKind::RegularOptimized => Box::new(RegularReader::<V>::with_tuning(
                        cfg,
                        j,
                        objects.clone(),
                        true,
                        regular_tuning,
                    )),
                });
            cluster.spawn(automaton)
        })
        .collect();
    GroupPids {
        objects,
        writer,
        readers,
    }
}

/// Spawns one register group, consulting `factory` for Byzantine *object*
/// substitutions only (the historical deploy hook of [`StorageCluster`]
/// and [`crate::ShardedStore`]); tracks which indexes were substituted.
pub(crate) fn spawn_register_group<V: Value>(
    cluster: &mut Cluster<Msg<V>>,
    cfg: StorageConfig,
    kind: ProtocolKind,
    retention: HistoryRetention,
    tuning: Option<ReaderTuning>,
    mut factory: impl FnMut(usize) -> Option<Box<dyn Automaton<Msg<V>>>>,
) -> RegisterGroup {
    let mut byzantine = Vec::new();
    let pids = spawn_group_with(cluster, cfg, kind, retention, tuning, |role| match role {
        GroupRole::Object(i) => {
            let substituted = factory(i);
            if substituted.is_some() {
                byzantine.push(i);
            }
            substituted
        }
        GroupRole::Writer | GroupRole::Reader(_) => None,
    });
    RegisterGroup {
        objects: pids.objects,
        writer: pids.writer,
        readers: pids.readers,
        byzantine,
    }
}

/// Process ids of one spawned register group.
pub(crate) struct RegisterGroup {
    pub(crate) objects: Vec<ProcessId>,
    pub(crate) writer: ProcessId,
    pub(crate) readers: Vec<ProcessId>,
    /// Object indices whose automaton the deploy factory substituted —
    /// skipped by the tolerant history inspection below (a downcast
    /// mismatch inside an invoke would poison the process).
    pub(crate) byzantine: Vec<usize>,
}

/// History length of every regular object in `objects`, shared by
/// [`StorageCluster::history_lens`] and [`crate::ShardedStore::history_lens`].
///
/// # Panics
///
/// Panics if `kind` is `ProtocolKind::Safe` (safe objects keep no
/// history) or an inspected object is not a live honest
/// [`RegularObject`] (crashed or Byzantine-substituted).
pub(crate) fn history_lens<V: Value>(
    cluster: &Cluster<Msg<V>>,
    kind: ProtocolKind,
    objects: &[ProcessId],
) -> Vec<usize> {
    assert!(kind != ProtocolKind::Safe, "safe objects keep no history");
    objects
        .iter()
        .map(|&pid| cluster.invoke(pid, |o: &mut RegularObject<V>, _ctx| o.history().len()))
        .collect()
}

/// Sum of the fast-path counters of every reader in `readers`, shared by
/// [`StorageCluster::fast_path_stats`] and
/// [`crate::ShardedStore::fast_path_stats`].
pub(crate) fn fast_path_stats<V: Value>(
    cluster: &Cluster<Msg<V>>,
    kind: ProtocolKind,
    readers: &[ProcessId],
) -> FastPathStats {
    let mut total = FastPathStats::default();
    for &pid in readers {
        let s = match kind {
            ProtocolKind::Safe => cluster.invoke(pid, |r: &mut SafeReader<V>, _ctx| r.fast_stats()),
            ProtocolKind::Regular | ProtocolKind::RegularOptimized => {
                cluster.invoke(pid, |r: &mut RegularReader<V>, _ctx| r.fast_stats())
            }
        };
        total.hits += s.hits;
        total.fallbacks += s.fallbacks;
    }
    total
}

/// Like [`history_lens`], but for metrics snapshots: skips
/// Byzantine-substituted and crashed objects instead of panicking, and
/// returns nothing for the history-less safe protocol.
pub(crate) fn try_history_lens<V: Value>(
    cluster: &Cluster<Msg<V>>,
    kind: ProtocolKind,
    group: &RegisterGroup,
) -> Vec<usize> {
    if kind == ProtocolKind::Safe {
        return Vec::new();
    }
    group
        .objects
        .iter()
        .enumerate()
        .filter(|(i, _)| !group.byzantine.contains(i))
        .filter_map(|(_, &pid)| {
            cluster
                .try_invoke(pid, |o: &mut RegularObject<V>, _ctx| o.history().len())
                .ok()
        })
        .collect()
}

/// Exports the worker-pool activity counters under their canonical
/// `vrr_executor_*` names.
pub(crate) fn record_executor_stats(sink: &mut dyn MetricsSink, stats: &ExecutorStats) {
    sink.counter_add(metrics::names::EXECUTOR_SWEEPS, &[], stats.sweeps);
    sink.counter_add(metrics::names::EXECUTOR_WAKEUPS, &[], stats.wakeups);
    sink.counter_add(metrics::names::EXECUTOR_COMMANDS, &[], stats.commands);
}

/// Records one completed write into `ops`. On the runtime, latency ticks
/// are wall-clock **microseconds** (the simulator records sim ticks under
/// the same name; the unit is the harness's to define).
pub(crate) fn record_write(ops: &Mutex<Registry>, rounds: u32, started: Instant) {
    let us = started.elapsed().as_micros() as u64;
    let mut ops = ops.lock();
    ops.observe(metrics::names::WRITER_ROUNDS, &[], u64::from(rounds));
    ops.observe(metrics::names::WRITE_LATENCY, &[], us);
}

/// Records one completed read into `ops` (microsecond latency ticks, see
/// [`record_write`]).
pub(crate) fn record_read(ops: &Mutex<Registry>, rounds: u32, started: Instant) {
    let us = started.elapsed().as_micros() as u64;
    let mut ops = ops.lock();
    ops.observe(metrics::names::READER_ROUNDS, &[], u64::from(rounds));
    ops.observe(metrics::names::READ_LATENCY, &[], us);
}

/// A storage deployment on OS threads with a blocking client API.
///
/// # Examples
///
/// ```
/// use vrr_runtime::{StorageCluster, ProtocolKind, NoDelay};
/// use vrr_core::StorageConfig;
///
/// let cfg = StorageConfig::optimal(1, 1, 1);
/// let storage: StorageCluster<u64> =
///     StorageCluster::deploy(cfg, ProtocolKind::Safe, Box::new(NoDelay));
/// storage.write(7);
/// assert_eq!(storage.read(0).value, Some(7));
/// ```
pub struct StorageCluster<V: Value> {
    cluster: Cluster<Msg<V>>,
    kind: ProtocolKind,
    cfg: StorageConfig,
    group: RegisterGroup,
    /// Client-side operation metrics (rounds and latency histograms),
    /// folded into [`StorageCluster::metrics_snapshot`].
    ops: Mutex<Registry>,
}

impl<V: Value> StorageCluster<V> {
    /// Deploys `cfg.s` object threads, one writer thread and `cfg.readers`
    /// reader threads running the chosen protocol, connected through a
    /// router with the given link policy.
    pub fn deploy(
        cfg: StorageConfig,
        kind: ProtocolKind,
        policy: Box<dyn LinkPolicy<Msg<V>>>,
    ) -> Self {
        Self::deploy_with_objects(cfg, kind, policy, |_i| None)
    }

    /// Like [`StorageCluster::deploy`], but every reader runs `tuning`
    /// instead of the default. The sanctioned use is steering the
    /// one-round fast path — e.g. disabling it for a two-round control
    /// deployment, or setting an unreachable
    /// [`vrr_core::safe::SafeTuning::fast_threshold`] to measure the pure
    /// fallback path. Over-provision with [`StorageConfig::fast`] to make
    /// the default fast path actually fire.
    ///
    /// # Panics
    ///
    /// Panics if the [`ReaderTuning`] variant does not match `kind`.
    pub fn deploy_with_reader_tuning(
        cfg: StorageConfig,
        kind: ProtocolKind,
        policy: Box<dyn LinkPolicy<Msg<V>>>,
        retention: HistoryRetention,
        tuning: ReaderTuning,
    ) -> Self {
        Self::deploy_full(cfg, kind, policy, retention, Some(tuning), |_i| None)
    }

    /// Like [`StorageCluster::deploy`], but regular objects run `retention`
    /// instead of the paper-faithful
    /// [`HistoryRetention::KeepAll`]. Deploying
    /// `ProtocolKind::RegularOptimized` with
    /// `HistoryRetention::reader_ack(cfg.readers)` is the bounded-memory
    /// production configuration (suffix transfers + reader-ack GC).
    pub fn deploy_with_retention(
        cfg: StorageConfig,
        kind: ProtocolKind,
        policy: Box<dyn LinkPolicy<Msg<V>>>,
        retention: HistoryRetention,
    ) -> Self {
        Self::deploy_inner(cfg, kind, policy, retention, |_i| None)
    }

    /// Like [`StorageCluster::deploy`], but `factory` may substitute the
    /// automaton of any object index — the hook for deploying Byzantine
    /// objects (e.g. from [`vrr_core::attackers`]) on the thread runtime.
    /// Returning `None` deploys the honest object for the protocol.
    pub fn deploy_with_objects(
        cfg: StorageConfig,
        kind: ProtocolKind,
        policy: Box<dyn LinkPolicy<Msg<V>>>,
        factory: impl FnMut(usize) -> Option<Box<dyn Automaton<Msg<V>>>>,
    ) -> Self {
        Self::deploy_inner(cfg, kind, policy, HistoryRetention::KeepAll, factory)
    }

    /// The fault-injection soak constructor: combines
    /// [`StorageCluster::deploy_with_retention`] (bounded-memory GC) with
    /// [`StorageCluster::deploy_with_objects`] (Byzantine substitution), so
    /// a single deployment can run GC *and* liars at once — the
    /// combined-fault configuration the workspace soak drives.
    pub fn deploy_with_retention_and_objects(
        cfg: StorageConfig,
        kind: ProtocolKind,
        policy: Box<dyn LinkPolicy<Msg<V>>>,
        retention: HistoryRetention,
        factory: impl FnMut(usize) -> Option<Box<dyn Automaton<Msg<V>>>>,
    ) -> Self {
        Self::deploy_inner(cfg, kind, policy, retention, factory)
    }

    fn deploy_inner(
        cfg: StorageConfig,
        kind: ProtocolKind,
        policy: Box<dyn LinkPolicy<Msg<V>>>,
        retention: HistoryRetention,
        factory: impl FnMut(usize) -> Option<Box<dyn Automaton<Msg<V>>>>,
    ) -> Self {
        Self::deploy_full(cfg, kind, policy, retention, None, factory)
    }

    fn deploy_full(
        cfg: StorageConfig,
        kind: ProtocolKind,
        policy: Box<dyn LinkPolicy<Msg<V>>>,
        retention: HistoryRetention,
        tuning: Option<ReaderTuning>,
        factory: impl FnMut(usize) -> Option<Box<dyn Automaton<Msg<V>>>>,
    ) -> Self {
        let mut cluster: Cluster<Msg<V>> = Cluster::new(policy);
        let group = spawn_register_group(&mut cluster, cfg, kind, retention, tuning, factory);
        cluster.seal();
        StorageCluster {
            cluster,
            kind,
            cfg,
            group,
            ops: Mutex::new(Registry::new()),
        }
    }

    /// The deployment sizing.
    pub fn config(&self) -> StorageConfig {
        self.cfg
    }

    /// The protocol variant.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// The object process ids (for fault injection).
    pub fn objects(&self) -> &[ProcessId] {
        &self.group.objects
    }

    /// Blocking `WRITE(value)`.
    ///
    /// # Panics
    ///
    /// Panics if the write does not complete within the operation timeout —
    /// with at most `t` injected faults that is a wait-freedom violation.
    pub fn write(&self, value: V) -> WriteReport {
        let started = Instant::now();
        let report = blocking_write(&self.cluster, self.group.writer, value);
        record_write(&self.ops, report.rounds, started);
        report
    }

    /// Blocking `READ()` at reader `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or the read does not complete within
    /// the operation timeout.
    pub fn read(&self, j: usize) -> ReadReport<V> {
        let started = Instant::now();
        let report = blocking_read(&self.cluster, self.kind, self.group.readers[j]);
        record_read(&self.ops, report.rounds, started);
        report
    }

    /// Crashes object `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn crash_object(&self, idx: usize) {
        self.cluster.crash(self.group.objects[idx]);
    }

    /// The current history length of every (honest, live) regular object —
    /// the memory-bound observable of the reader-ack GC experiments.
    ///
    /// # Panics
    ///
    /// Panics if the deployment is `ProtocolKind::Safe` (safe objects keep
    /// no history) or an inspected object is not a live honest
    /// [`RegularObject`] (crashed or Byzantine-substituted).
    pub fn history_lens(&self) -> Vec<usize> {
        history_lens(&self.cluster, self.kind, &self.group.objects)
    }

    /// Sum of the one-round fast-path counters over all readers: how many
    /// reads finished in round 1 (`hits`) vs. fell back to the two-round
    /// protocol (`fallbacks`). Both stay zero at optimal resilience, where
    /// Proposition 1 keeps the fast path disarmed.
    pub fn fast_path_stats(&self) -> FastPathStats {
        fast_path_stats(&self.cluster, self.kind, &self.group.readers)
    }

    /// One deterministic-shape snapshot of everything observable about
    /// this deployment, under the same canonical `vrr_*` names
    /// ([`vrr_core::metrics::names`]) the simulator harness exports:
    /// operation rounds/latency histograms (latency ticks are wall-clock
    /// microseconds here), worker-pool activity counters, fast-path
    /// counters and per-object history-length gauges (crashed or
    /// Byzantine-substituted objects are skipped; the safe protocol keeps
    /// no histories). Encode with
    /// [`vrr_core::metrics::Registry::to_prometheus`].
    pub fn metrics_snapshot(&self) -> Registry {
        let mut reg = self.ops.lock().clone();
        record_executor_stats(&mut reg, &self.cluster.stats());
        metrics::record_fast_path(&mut reg, &self.fast_path_stats());
        if self.kind != ProtocolKind::Safe {
            let lens = try_history_lens(&self.cluster, self.kind, &self.group);
            metrics::record_history_lens(&mut reg, None, &lens);
        }
        reg
    }

    /// Access to the underlying cluster (fault injection, raw sends).
    pub fn cluster(&self) -> &Cluster<Msg<V>> {
        &self.cluster
    }
}

impl<V: Value> std::fmt::Debug for StorageCluster<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageCluster")
            .field("kind", &self.kind)
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::router::{FixedDelay, NoDelay};

    #[test]
    fn safe_storage_round_trip_on_threads() {
        let cfg = StorageConfig::optimal(1, 1, 2);
        let storage: StorageCluster<u64> =
            StorageCluster::deploy(cfg, ProtocolKind::Safe, Box::new(NoDelay));
        let w = storage.write(42);
        assert_eq!(w.rounds, 2);
        for j in 0..2 {
            let r = storage.read(j);
            assert_eq!(r.value, Some(42));
            assert_eq!(r.rounds, 2);
        }
    }

    #[test]
    fn regular_storage_with_link_delay() {
        let cfg = StorageConfig::optimal(1, 1, 1);
        let storage: StorageCluster<u64> = StorageCluster::deploy(
            cfg,
            ProtocolKind::Regular,
            Box::new(FixedDelay(Duration::from_millis(1))),
        );
        for k in 1..=3u64 {
            storage.write(k * 10);
            assert_eq!(storage.read(0).value, Some(k * 10));
        }
    }

    #[test]
    fn optimized_regular_on_threads() {
        let cfg = StorageConfig::optimal(1, 1, 1);
        let storage: StorageCluster<u64> =
            StorageCluster::deploy(cfg, ProtocolKind::RegularOptimized, Box::new(NoDelay));
        storage.write(5);
        assert_eq!(storage.read(0).value, Some(5));
        storage.write(6);
        assert_eq!(storage.read(0).value, Some(6));
    }

    #[test]
    fn reader_ack_gc_bounds_history_on_threads() {
        let cfg = StorageConfig::optimal(1, 1, 1);
        let storage: StorageCluster<u64> = StorageCluster::deploy_with_retention(
            cfg,
            ProtocolKind::RegularOptimized,
            Box::new(NoDelay),
            HistoryRetention::reader_ack(1),
        );
        for k in 1..=100u64 {
            storage.write(k);
            assert_eq!(storage.read(0).value, Some(k));
        }
        // Acks ride on the READ broadcasts, which are flushed before the
        // inspection command is enqueued: every object has truncated down
        // to the concurrency window by now.
        for len in storage.history_lens() {
            assert!(len <= 5, "history len {len} not bounded after 100 writes");
        }
    }

    #[test]
    fn keep_all_history_grows_on_threads() {
        // The paper-faithful default really does grow — the control for
        // the GC test above.
        let cfg = StorageConfig::optimal(1, 1, 1);
        let storage: StorageCluster<u64> =
            StorageCluster::deploy(cfg, ProtocolKind::RegularOptimized, Box::new(NoDelay));
        for k in 1..=30u64 {
            storage.write(k);
            assert_eq!(storage.read(0).value, Some(k));
        }
        assert!(storage.history_lens().into_iter().all(|len| len == 31));
    }

    #[test]
    fn over_provisioned_reads_complete_in_one_round() {
        // S = 2t + 2b + 1 = 5 arms the fast path: fault-free reads finish
        // in round 1 for both protocol families.
        let cfg = StorageConfig::fast(1, 1, 1);
        for kind in [
            ProtocolKind::Safe,
            ProtocolKind::Regular,
            ProtocolKind::RegularOptimized,
        ] {
            let storage: StorageCluster<u64> = StorageCluster::deploy(cfg, kind, Box::new(NoDelay));
            for k in 1..=3u64 {
                storage.write(k);
                let r = storage.read(0);
                assert_eq!(r.value, Some(k), "{kind:?}");
                assert_eq!(r.rounds, 1, "{kind:?}");
                assert!(r.fast, "{kind:?}");
            }
            let stats = storage.fast_path_stats();
            assert_eq!(stats.hits, 3, "{kind:?}");
            assert_eq!(stats.fallbacks, 0, "{kind:?}");
        }
    }

    #[test]
    fn fast_path_stays_disarmed_at_optimal_resilience() {
        let cfg = StorageConfig::optimal(1, 1, 1); // S = 2t + 2b: Prop. 1
        let storage: StorageCluster<u64> =
            StorageCluster::deploy(cfg, ProtocolKind::RegularOptimized, Box::new(NoDelay));
        storage.write(7);
        let r = storage.read(0);
        assert_eq!(r.value, Some(7));
        assert_eq!(r.rounds, 2);
        assert!(!r.fast);
        assert_eq!(storage.fast_path_stats(), FastPathStats::default());
    }

    #[test]
    fn unreachable_threshold_forces_the_fallback_path() {
        // The deterministic fallback-forcing deployment used by the
        // `read/fast-fallback` bench: over-provisioned sizing, but a
        // threshold no quorum can meet, so every read arms the fast path
        // and then completes through the two-round protocol.
        let cfg = StorageConfig::fast(1, 1, 1);
        let storage: StorageCluster<u64> = StorageCluster::deploy_with_reader_tuning(
            cfg,
            ProtocolKind::RegularOptimized,
            Box::new(NoDelay),
            HistoryRetention::KeepAll,
            ReaderTuning::Regular(RegularTuning {
                fast_threshold: Some(usize::MAX),
                ..RegularTuning::default()
            }),
        );
        for k in 1..=4u64 {
            storage.write(k);
            let r = storage.read(0);
            assert_eq!(r.value, Some(k));
            assert_eq!(r.rounds, 2);
            assert!(!r.fast);
        }
        let stats = storage.fast_path_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.fallbacks, 4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn mismatched_reader_tuning_panics() {
        let cfg = StorageConfig::fast(1, 1, 1);
        let _storage: StorageCluster<u64> = StorageCluster::deploy_with_reader_tuning(
            cfg,
            ProtocolKind::Safe,
            Box::new(NoDelay),
            HistoryRetention::KeepAll,
            ReaderTuning::Regular(RegularTuning::default()),
        );
    }

    #[test]
    fn metrics_snapshot_reflects_operations() {
        use vrr_core::metrics::names;

        let cfg = StorageConfig::fast(1, 1, 2);
        let storage: StorageCluster<u64> = StorageCluster::deploy_with_retention(
            cfg,
            ProtocolKind::RegularOptimized,
            Box::new(NoDelay),
            HistoryRetention::reader_ack(2),
        );
        for k in 1..=4u64 {
            storage.write(k);
            storage.read(0);
            storage.read(1);
        }
        let snap = storage.metrics_snapshot();
        assert_eq!(
            snap.histogram(names::WRITER_ROUNDS, &[]).unwrap().count(),
            4
        );
        assert_eq!(
            snap.histogram(names::READER_ROUNDS, &[]).unwrap().count(),
            8
        );
        assert_eq!(snap.histogram(names::READ_LATENCY, &[]).unwrap().count(), 8);
        let hits = snap.counter(names::READER_FAST_HITS, &[]);
        let fallbacks = snap.counter(names::READER_FAST_FALLBACKS, &[]);
        assert_eq!(hits + fallbacks, 8, "every read hit or fell back");
        assert!(snap.counter(names::EXECUTOR_COMMANDS, &[]) > 0);
        let lens = snap.gauge_values(names::OBJECT_HISTORY_LEN);
        assert_eq!(lens.len(), cfg.s, "one history gauge per honest object");
        // The snapshot speaks the same text format as the sim harness.
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE vrr_writer_rounds histogram"));
        assert!(text.contains("vrr_object_history_len{object=\"0\"}"));
    }

    #[test]
    fn snapshot_tolerates_crashed_and_byzantine_objects() {
        use vrr_core::attackers::AttackerKind;
        use vrr_core::metrics::names;

        let cfg = StorageConfig::fast(1, 1, 1);
        let storage: StorageCluster<u64> = StorageCluster::deploy_with_objects(
            cfg,
            ProtocolKind::RegularOptimized,
            Box::new(NoDelay),
            |i| (i == 4).then(|| AttackerKind::Inflator.build_regular(cfg, 0xBAD)),
        );
        storage.write(1);
        assert_eq!(storage.read(0).value, Some(1));
        storage.crash_object(0);
        let snap = storage.metrics_snapshot();
        // 5 objects - 1 Byzantine - 1 crashed = 3 inspectable histories.
        assert_eq!(snap.gauge_values(names::OBJECT_HISTORY_LEN).len(), 3);
    }

    #[test]
    fn survives_t_object_crashes() {
        let cfg = StorageConfig::optimal(2, 1, 1); // S = 6, t = 2
        let storage: StorageCluster<u64> =
            StorageCluster::deploy(cfg, ProtocolKind::Safe, Box::new(NoDelay));
        storage.crash_object(0);
        storage.crash_object(4);
        storage.write(9);
        assert_eq!(storage.read(0).value, Some(9));
    }
}
