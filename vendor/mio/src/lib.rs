//! Offline shim for the `mio` readiness-polling crate.
//!
//! The build container has no registry access, so this is a minimal,
//! API-compatible stand-in implementing exactly the surface `vrr-net`'s
//! reactor uses: [`Poll`] / [`Registry`] / [`Events`] / [`Token`] /
//! [`Interest`], the [`net`] socket wrappers, [`Waker`], and
//! [`unix::SourceFd`]. The implementation talks to Linux `epoll(7)`
//! directly through the C library `std` already links (`epoll_create1` /
//! `epoll_ctl` / `epoll_wait`), with no `libc` crate dependency.
//!
//! Known divergences from real mio — all chosen so that code written
//! against this shim keeps working when the workspace dependency is
//! flipped back to crates.io (see `vendor/README.md`):
//!
//! - **Level-triggered**, where real mio is edge-triggered. Reactors must
//!   drain reads to `WouldBlock` and keep explicit write queues — the
//!   discipline that is *required* under edge triggering and merely
//!   redundant under level triggering, so it is correct under both.
//! - [`net::TcpStream::connect`] performs a bounded synchronous connect
//!   (localhost targets connect or refuse immediately), then switches the
//!   socket to non-blocking. Real mio returns an in-progress socket.
//!   Callers must treat the stream as connected only after the first
//!   writable event with [`net::TcpStream::take_error`]` == None` — which
//!   is exactly the real-mio protocol, and works here too because a
//!   registered connected socket reports writable immediately.
//! - [`Waker`] is a non-blocking `UnixStream` pair, not an `eventfd`;
//!   behaviour (coalescing wakes, drained by the poller) is the same.

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

// The subset of the C library the shim needs. `std` already links these
// symbols; declaring them here avoids a `libc` crate dependency.
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event` — packed on x86-64, which is the only
    /// platform the workspace container targets.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn setsockopt(
            sockfd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }

    pub const SOL_SOCKET: c_int = 1;
    pub const SO_REUSEADDR: c_int = 2;
}

/// Associates a readiness event with the registration it belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (`READABLE | WRITABLE`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(1);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(2);

    /// Whether this interest includes read readiness.
    pub fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this interest includes write readiness.
    pub fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.is_readable() {
            bits |= sys::EPOLLIN;
        }
        if self.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness event returned by [`Poll::poll`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The [`Token`] the event's registration used.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the source is ready for reading (includes peer hang-up, so
    /// a read is guaranteed not to block — it may return 0).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    /// Whether the source is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// Whether an error condition was observed on the source.
    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }

    /// Whether the peer closed its write half (or the connection is gone).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }
}

/// A collection of readiness events filled by [`Poll::poll`].
#[derive(Debug)]
pub struct Events {
    events: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A container able to hold up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Self {
        Events {
            events: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Whether the last poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Event sources registerable with a [`Registry`].
pub mod event {
    use super::RawFd;

    /// An event source: anything exposing the file descriptor epoll
    /// watches. Real mio dispatches `register` through this trait; the
    /// shim only needs the descriptor.
    pub trait Source {
        /// The descriptor to watch.
        fn source_fd(&self) -> RawFd;
    }
}

/// Registers event sources with the poller.
#[derive(Debug)]
pub struct Registry {
    epfd: RawFd,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, token: Option<Token>, interests: Option<Interest>) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interests.map_or(0, Interest::epoll_bits),
            data: token.map_or(0, |t| t.0 as u64),
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Registers `source` for `interests`, tagging its events with `token`.
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, source.source_fd(), Some(token), Some(interests))
    }

    /// Changes the interests of an already-registered `source`.
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, source.source_fd(), Some(token), Some(interests))
    }

    /// Removes `source` from the poller.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, source.source_fd(), None, None)
    }
}

/// The readiness poller: an `epoll(7)` instance.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh epoll instance.
    pub fn new() -> io::Result<Poll> {
        // 0x80000 = EPOLL_CLOEXEC.
        let epfd = unsafe { sys::epoll_create1(0x80000) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registry used to (de)register event sources.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`None` = forever), or the poll is woken by a [`Waker`].
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let mut raw = vec![sys::EpollEvent { events: 0, data: 0 }; events.capacity];
        let n = loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.registry.epfd,
                    raw.as_mut_ptr(),
                    raw.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                break n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &raw[..n] {
            events.events.push(Event {
                token: Token(ev.data as usize),
                bits: ev.events,
            });
        }
        Ok(())
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.registry.epfd);
        }
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from any thread.
#[derive(Debug)]
pub struct Waker {
    tx: Mutex<std::os::unix::net::UnixStream>,
    // Kept alive for the lifetime of the registration; the poller drains it.
    _rx: std::os::unix::net::UnixStream,
}

impl Waker {
    /// Creates a waker delivering readable events under `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        let mut source = unix::SourceFd(&rx.as_raw_fd());
        registry.register(&mut source, token, Interest::READABLE)?;
        Ok(Waker {
            tx: Mutex::new(tx),
            _rx: rx,
        })
    }

    /// Wakes the poller. Multiple wakes before the next poll coalesce.
    pub fn wake(&self) -> io::Result<()> {
        use std::io::Write;
        let mut tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        match tx.write(&[1]) {
            Ok(_) => Ok(()),
            // A full pipe means a wake is already pending: success.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Drains pending wake bytes (the poller calls this on the waker
    /// token's readable events). Shim-visible helper; real mio drains
    /// internally.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        let mut rx = &self._rx;
        while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Non-blocking TCP types registerable with a [`Poll`].
pub mod net {
    use super::{event, sys};
    use std::io::{self, Read, Write};
    use std::net::SocketAddr;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    /// A non-blocking listener.
    #[derive(Debug)]
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds with `SO_REUSEADDR` (as real mio does) and switches the
        /// socket to non-blocking.
        pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            // std's bind has no pre-bind socket-option hook, so bind first
            // and set SO_REUSEADDR for the *next* binder of this address —
            // enough for the restart-in-place pattern the workspace uses.
            let inner = std::net::TcpListener::bind(addr)?;
            let one: i32 = 1;
            unsafe {
                sys::setsockopt(
                    inner.as_raw_fd(),
                    sys::SOL_SOCKET,
                    sys::SO_REUSEADDR,
                    (&one as *const i32).cast(),
                    std::mem::size_of::<i32>() as u32,
                );
            }
            inner.set_nonblocking(true)?;
            Ok(TcpListener { inner })
        }

        /// Accepts one pending connection (non-blocking).
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, addr) = self.inner.accept()?;
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true).ok();
            Ok((TcpStream { inner: stream }, addr))
        }

        /// The bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl event::Source for TcpListener {
        fn source_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    /// A non-blocking stream.
    #[derive(Debug)]
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`. The shim connects synchronously with a
        /// bounded timeout (localhost connects or refuses immediately);
        /// real mio returns an in-progress socket. Either way, callers
        /// must await the first writable event and check
        /// [`TcpStream::take_error`] before treating the stream as up.
        pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            let inner = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
            inner.set_nonblocking(true)?;
            inner.set_nodelay(true).ok();
            Ok(TcpStream { inner })
        }

        /// The peer's address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// Takes the pending socket error, if any (`SO_ERROR`).
        pub fn take_error(&self) -> io::Result<Option<io::Error>> {
            self.inner.take_error()
        }
    }

    impl event::Source for TcpStream {
        fn source_fd(&self) -> RawFd {
            self.inner.as_raw_fd()
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl Read for &TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            (&self.inner).read(buf)
        }
    }

    impl Write for &TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            (&self.inner).write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            (&self.inner).flush()
        }
    }

    // Re-exported so reactors can hold sockets registered by fd.
    pub use super::unix;
}

/// Unix-only event sources.
pub mod unix {
    use super::event;
    use std::os::fd::RawFd;

    /// Adapter registering a raw file descriptor (real mio's
    /// `mio::unix::SourceFd`).
    #[derive(Debug)]
    pub struct SourceFd<'a>(pub &'a RawFd);

    impl event::Source for SourceFd<'_> {
        fn source_fd(&self) -> RawFd {
            *self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn poll_reports_accept_and_data() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);

        let mut listener =
            net::TcpListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, Token(1), Interest::READABLE)
            .unwrap();

        let mut client = net::TcpStream::connect(addr).unwrap();
        poll.registry()
            .register(&mut client, Token(2), Interest::READABLE | Interest::WRITABLE)
            .unwrap();

        // Accept becomes readable on the listener token.
        let mut accepted = None;
        for _ in 0..50 {
            poll.poll(&mut events, Some(Duration::from_millis(100))).unwrap();
            for ev in &events {
                if ev.token() == Token(1) {
                    let (s, _) = listener.accept().unwrap();
                    accepted = Some(s);
                }
                if ev.token() == Token(2) && ev.is_writable() {
                    assert!(client.take_error().unwrap().is_none());
                    client.write_all(b"ping").unwrap();
                }
            }
            if accepted.is_some() {
                break;
            }
        }
        let mut server = accepted.expect("accepted a connection");
        poll.registry()
            .register(&mut server, Token(3), Interest::READABLE)
            .unwrap();

        let mut got = Vec::new();
        for _ in 0..50 {
            poll.poll(&mut events, Some(Duration::from_millis(100))).unwrap();
            for ev in &events {
                if ev.token() == Token(3) && ev.is_readable() {
                    let mut buf = [0u8; 16];
                    match server.read(&mut buf) {
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) => panic!("read: {e}"),
                    }
                }
            }
            if got == b"ping" {
                return;
            }
        }
        panic!("never received ping; got {got:?}");
    }

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let mut poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), Token(9)).unwrap());
        let w2 = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token() == Token(9)));
        waker.drain();
        handle.join().unwrap();
    }
}
