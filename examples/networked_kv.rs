//! A multi-key networked configuration store on the worker-pool runtime.
//!
//! Models the deployment the paper motivates, at fleet scale: 64
//! configuration keys, each served by its own register shard (one writer,
//! `S = 4` storage nodes, 2 reader frontends) over one shared worker-pool
//! cluster — 448 automata in total. Eight publisher threads push config
//! generations for disjoint key sets in parallel; consumers verify every
//! key. Some shards are provisioned with a Byzantine storage node that
//! inflates timestamps, and mid-run a correct node per attacked shard
//! crashes — both within the per-shard `(t, b)` budget, so consumers never
//! notice.
//!
//! Run with `cargo run --release --example networked_kv`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vrr::core::attackers::AttackerKind;
use vrr::core::StorageConfig;
use vrr::runtime::{FixedDelay, ProtocolKind, ShardedStore};

const KEYS: usize = 64;
const PUBLISHERS: usize = 8;
const GENERATIONS: u64 = 3;

fn key(k: usize) -> String {
    format!("svc-{:02}/config", k)
}

fn value(k: usize, gen: u64) -> String {
    format!("svc-{:02}: gen={gen};max_conn={}", k, 100 * gen)
}

fn main() {
    // Per shard: tolerate t = 1 fault, of which b = 1 Byzantine
    // (S = 2t + b + 1 = 4 storage nodes), 2 consumer frontends.
    let cfg = StorageConfig::optimal(1, 1, 2);
    println!(
        "config store: {KEYS} keys x [{cfg:?}] shards = {} automata, \
         50 µs links, regular-opt protocol",
        KEYS * (cfg.s + 1 + cfg.readers)
    );

    // Every fourth shard hosts a compromised storage node (object 3) that
    // inflates timestamps to forge "fresher" configs — within b = 1.
    let store: Arc<ShardedStore<String, String>> = Arc::new(ShardedStore::deploy_with_objects(
        cfg,
        ProtocolKind::RegularOptimized,
        Box::new(FixedDelay(Duration::from_micros(50))),
        KEYS,
        |shard, i| {
            (shard.is_multiple_of(4) && i == 3)
                .then(|| AttackerKind::Inflator.build_regular(cfg, "EVIL CONFIG".to_string()))
        },
    ));
    println!(
        "worker pool: {} workers for {} processes",
        store.cluster().workers(),
        store.cluster().len()
    );

    // --- Publish: 8 threads, disjoint key ranges, in parallel. ----------
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..PUBLISHERS {
            let store = &store;
            scope.spawn(move || {
                for k in (p..KEYS).step_by(PUBLISHERS) {
                    for gen in 1..=GENERATIONS {
                        let w = store.write(key(k), value(k, gen));
                        assert_eq!(w.rounds, 2, "writes stay two-round");
                    }
                }
            });
        }
    });
    let publish_elapsed = t0.elapsed();
    let writes = KEYS as u64 * GENERATIONS;
    println!(
        "published {writes} generations across {KEYS} keys in {publish_elapsed:.2?} \
         ({:.0} writes/s, {PUBLISHERS} publishers)",
        writes as f64 / publish_elapsed.as_secs_f64()
    );

    // --- Fault injection: crash one *correct* node per attacked shard. --
    let mut crashed = 0;
    for k in 0..KEYS {
        let slot = store.shard_of(&key(k)).expect("key bound");
        if slot.is_multiple_of(4) {
            // Object 3 is the Byzantine one; object 0 is correct. A crash
            // would exceed t = 1 on top of the Byzantine node, so these
            // shards keep all correct nodes; crash on the *clean* shards
            // instead to exercise both budgets.
            continue;
        }
        if slot % 4 == 1 {
            store.crash_object(slot, 0);
            crashed += 1;
        }
    }
    println!("crashed 1 storage node in each of {crashed} clean shards (budget t = 1)");

    // --- Consume: both frontends of every shard verify the last gen. ----
    let t0 = Instant::now();
    let mut reads = 0u64;
    for k in 0..KEYS {
        for j in 0..cfg.readers {
            let r = store.read(&key(k), j).expect("key was published");
            assert_eq!(r.rounds, 2, "reads stay two-round");
            assert_eq!(
                r.value.as_deref(),
                Some(value(k, GENERATIONS).as_str()),
                "consumer {j} of {} saw a stale/forged config",
                key(k)
            );
            reads += 1;
        }
    }
    let consume_elapsed = t0.elapsed();
    println!(
        "verified {reads} reads across {KEYS} keys in {consume_elapsed:.2?} \
         ({:.0} reads/s)",
        reads as f64 / consume_elapsed.as_secs_f64()
    );

    println!(
        "ok: no consumer saw EVIL CONFIG, a stale value, or a failed read — \
         {} Byzantine shards and {crashed} crashed nodes were absorbed.",
        KEYS / 4
    );
}
