//! System sizing: `S` base objects, `t` faults, `b` Byzantine.

use std::fmt;

/// Failure and sizing parameters of a storage deployment.
///
/// The paper's model (§2.1): `S` base objects, at most `t` faulty, of which
/// at most `b` malicious, `b > 0`. An implementation using
/// `S = 2t + b + 1` objects is *optimally resilient*.
///
/// # Examples
///
/// ```
/// use vrr_core::StorageConfig;
///
/// let cfg = StorageConfig::optimal(2, 1, 1); // t=2, b=1, one reader
/// assert_eq!(cfg.s, 6);                      // 2t + b + 1
/// assert_eq!(cfg.quorum(), 4);               // S - t
/// assert_eq!(cfg.b_plus_1(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StorageConfig {
    /// Total number of base objects `S`.
    pub s: usize,
    /// Maximum number of faulty objects `t`.
    pub t: usize,
    /// Maximum number of malicious objects `b` (`b ≤ t`).
    pub b: usize,
    /// Number of reader clients `R`.
    pub readers: usize,
}

impl StorageConfig {
    /// An optimally resilient configuration: `S = 2t + b + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` (the paper assumes `b > 0`), `b > t`, or
    /// `readers == 0`.
    pub fn optimal(t: usize, b: usize, readers: usize) -> Self {
        Self::with_objects(2 * t + b + 1, t, b, readers)
    }

    /// A crash-only configuration (`b = 0`, `S = 2t + 1`), the setting of
    /// the ABD baseline \[ABD95\]. The paper's own protocols assume `b > 0`.
    pub fn crash_only(t: usize, readers: usize) -> Self {
        Self::with_objects(2 * t + 1, t, 0, readers)
    }

    /// A configuration with an explicit object count (used by the
    /// lower-bound and resilience experiments, which deliberately go below
    /// optimal resilience, and by the crash-only baseline with `b = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `b > t`, `readers == 0`, or `s ≤ t + b` (with so few
    /// objects no quorum intersection survives even crash faults; no
    /// experiment is meaningful there).
    pub fn with_objects(s: usize, t: usize, b: usize, readers: usize) -> Self {
        assert!(b <= t, "Byzantine faults are a subset of faults: b <= t");
        assert!(readers > 0, "at least one reader");
        assert!(s > t + b, "need s > t + b for any quorum reasoning");
        StorageConfig { s, t, b, readers }
    }

    /// Whether this is the optimal-resilience size `S = 2t + b + 1`.
    pub fn is_optimal(&self) -> bool {
        self.s == 2 * self.t + self.b + 1
    }

    /// The quorum a client can safely wait for: `S − t` replies.
    pub fn quorum(&self) -> usize {
        self.s - self.t
    }

    /// The Byzantine-evidence threshold `b + 1`: at least one correct object
    /// is behind any `b + 1` identical reports.
    pub fn b_plus_1(&self) -> usize {
        self.b + 1
    }

    /// The elimination threshold `t + b + 1` used by the reader's candidate
    /// removal rule (Figure 4, lines 27–28).
    pub fn t_plus_b_plus_1(&self) -> usize {
        self.t + self.b + 1
    }

    /// Number of non-malicious objects in the worst case: `S − b`.
    pub fn non_malicious(&self) -> usize {
        self.s - self.b
    }

    /// Number of correct objects in the worst case: `S − t`.
    pub fn correct(&self) -> usize {
        self.s - self.t
    }

    /// The threshold below which fast reads are impossible (Proposition 1):
    /// any `S ≤ 2t + 2b` cannot support single-round reads.
    ///
    /// [`StorageConfig::fast_read_quorum`] is the positive counterpart:
    /// it yields the confirmation count a sound one-round read needs when
    /// one is possible at all.
    pub fn fast_read_impossible(&self) -> bool {
        self.fast_read_quorum().is_none()
    }

    /// Round-1 confirmations a sound **one-round fast-path read** needs, or
    /// `None` where Proposition 1 forbids fast reads (`S ≤ 2t + 2b`).
    ///
    /// The count is `2b + 1 + (S − 2t − 2b − 1) = S − 2t`: take the
    /// `2b + 1` matching replies that guarantee a correct, non-Byzantine
    /// majority witness, plus one more for every object provisioned beyond
    /// the `S = 2t + 2b + 1` minimum, so that *any* quorum of `S − t`
    /// replies a later read collects must intersect the confirming set in
    /// at least `b + 1` objects — one of them correct.
    ///
    /// # Examples
    ///
    /// Proposition 1 says single-round reads are impossible with
    /// `S ≤ 2t + 2b` objects, and in particular at optimal resilience
    /// `S = 2t + b + 1` (since `b ≥ 1`); one object above the boundary the
    /// fast path engages with a `2b + 1`-strength confirmation rule:
    ///
    /// ```
    /// use vrr_core::StorageConfig;
    ///
    /// // At and below the Prop. 1 boundary: no fast read, ever.
    /// assert_eq!(StorageConfig::optimal(1, 1, 1).fast_read_quorum(), None);
    /// assert_eq!(StorageConfig::with_objects(4, 1, 1, 1).fast_read_quorum(), None);
    ///
    /// // S = 2t + 2b + 1 = 5: fast reads need S - 2t = 2b + 1 = 3 confirmations.
    /// let fast = StorageConfig::fast(1, 1, 1);
    /// assert_eq!(fast.s, 5);
    /// assert_eq!(fast.fast_read_quorum(), Some(3));
    ///
    /// // Each extra object raises the bar by one, keeping the intersection
    /// // argument intact.
    /// assert_eq!(StorageConfig::with_objects(6, 1, 1, 1).fast_read_quorum(), Some(4));
    /// ```
    pub fn fast_read_quorum(&self) -> Option<usize> {
        (self.s > 2 * self.t + 2 * self.b).then(|| self.s - 2 * self.t)
    }

    /// The cheapest sizing at which one-round fast-path reads are sound:
    /// `S = 2t + 2b + 1`, one object above the Proposition 1 boundary.
    ///
    /// Compared to [`StorageConfig::optimal`] this buys the fast path with
    /// `b` extra base objects.
    ///
    /// # Panics
    ///
    /// Panics if `b > t` or `readers == 0`.
    pub fn fast(t: usize, b: usize, readers: usize) -> Self {
        let cfg = Self::with_objects(2 * t + 2 * b + 1, t, b, readers);
        debug_assert_eq!(cfg.fast_read_quorum(), Some(2 * b + 1));
        cfg
    }
}

impl fmt::Debug for StorageConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S={} t={} b={} R={}{}",
            self.s,
            self.t,
            self.b,
            self.readers,
            if self.is_optimal() { " (optimal)" } else { "" }
        )
    }
}

impl fmt::Display for StorageConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_sizing() {
        let cfg = StorageConfig::optimal(1, 1, 1);
        assert_eq!(cfg.s, 4);
        assert!(cfg.is_optimal());
        assert_eq!(cfg.quorum(), 3);
        assert_eq!(cfg.b_plus_1(), 2);
        assert_eq!(cfg.t_plus_b_plus_1(), 3);
        assert_eq!(cfg.non_malicious(), 3);
        assert!(cfg.fast_read_impossible(), "2t+b+1 = 4 <= 2t+2b = 4");
    }

    #[test]
    fn fast_read_boundary() {
        // S = 2t+2b: impossible. S = 2t+2b+1: possible.
        let at = StorageConfig::with_objects(4, 1, 1, 1);
        let above = StorageConfig::with_objects(5, 1, 1, 1);
        assert!(at.fast_read_impossible());
        assert!(!above.fast_read_impossible());
        assert_eq!(at.fast_read_quorum(), None);
        assert_eq!(above.fast_read_quorum(), Some(3));
    }

    #[test]
    fn fast_quorum_matches_issue_arithmetic() {
        // The spec formula 2b + 1 + (S - 2t - 2b - 1) must equal S - 2t
        // wherever the fast path engages.
        for t in 1..5 {
            for b in 1..=t {
                for s in (2 * t + 2 * b + 1)..(2 * t + 2 * b + 5) {
                    let cfg = StorageConfig::with_objects(s, t, b, 1);
                    let spec = 2 * b + 1 + (s - 2 * t - 2 * b - 1);
                    assert_eq!(cfg.fast_read_quorum(), Some(spec), "{cfg}");
                    // Strong enough to out-vote the liars, and always
                    // satisfiable by a fault-free quorum.
                    assert!(spec >= cfg.b_plus_1());
                    assert!(spec <= cfg.quorum());
                }
            }
        }
    }

    #[test]
    fn fast_sizing_constructor() {
        let cfg = StorageConfig::fast(2, 1, 3);
        assert_eq!(cfg.s, 7);
        assert_eq!(cfg.readers, 3);
        assert!(!cfg.is_optimal());
        assert_eq!(cfg.fast_read_quorum(), Some(3));
    }

    #[test]
    fn optimal_is_impossible_for_fast_reads_iff_b_le_t() {
        // 2t+b+1 <= 2t+2b  <=>  b >= 1, always true here.
        for t in 1..5 {
            for b in 1..=t {
                assert!(StorageConfig::optimal(t, b, 1).fast_read_impossible());
            }
        }
    }

    #[test]
    fn crash_only_is_abd_sized() {
        let cfg = StorageConfig::crash_only(2, 1);
        assert_eq!(cfg.s, 5);
        assert_eq!(cfg.b, 0);
        assert_eq!(cfg.quorum(), 3);
        assert_eq!(cfg.b_plus_1(), 1);
    }

    #[test]
    #[should_panic(expected = "b <= t")]
    fn rejects_b_above_t() {
        let _ = StorageConfig::with_objects(9, 1, 2, 1);
    }

    #[test]
    #[should_panic(expected = "s > t + b")]
    fn rejects_tiny_s() {
        let _ = StorageConfig::with_objects(2, 1, 1, 1);
    }

    #[test]
    fn debug_marks_optimal() {
        assert!(format!("{:?}", StorageConfig::optimal(1, 1, 2)).contains("optimal"));
        assert!(!format!("{:?}", StorageConfig::with_objects(5, 1, 1, 2)).contains("optimal"));
    }
}
