//! **E-T1 — Theorem 1**: the §4 algorithm implements a *safe* storage.
//!
//! Part 1 sweeps random schedules × fault plans × seeds and feeds every
//! history to the safety checker: zero violations expected.
//!
//! Part 2 validates the harness by mutation testing: six deliberately
//! broken reader variants (weakened thresholds, skipped mechanisms) run
//! under targeted attacks, and the checker must catch a violation — or the
//! liveness detector a stall — for each. A mutation that slips through
//! would mean the sweep in part 1 proves nothing.
//!
//! Expected shape (paper): 0 violations for the real protocol; every
//! mutant caught. Run with
//! `cargo run --release -p vrr-bench --bin thm1_safety`.

use vrr_bench::Table;
use vrr_checker::check_safety;
use vrr_core::safe::SafeTuning;
use vrr_core::{MutantSafeProtocol, SafeProtocol, StorageConfig};
use vrr_workload::{
    generate, grid, run_schedule, safe_corruptor, FaultPlan, LatencyKind, ScheduleParams,
};

fn main() {
    // ---- Part 1: the real protocol under the sweep.
    let points = grid(&[1, 2, 3], &[1, 2, 3], 0..40u64);
    let mut runs = 0u64;
    let mut reads = 0u64;
    let mut violations = 0u64;
    let mut stalls = 0u64;
    for p in &points {
        let cfg = StorageConfig::optimal(p.t, p.b, 2);
        let schedule = generate(ScheduleParams::contended(6, 8, 2, p.seed));
        let faults = match p.attacker {
            None => FaultPlan::random(&cfg, 300, p.seed),
            Some(kind) => FaultPlan::maximal(&cfg, kind, vrr_sim::SimTime::from_ticks(50)),
        };
        let out = run_schedule(
            &SafeProtocol,
            cfg,
            &schedule,
            &faults,
            LatencyKind::LongTail,
            p.seed,
            &safe_corruptor,
        );
        runs += 1;
        reads += out.read_rounds.len() as u64;
        stalls += out.stalled_ops as u64;
        if check_safety(&out.history).is_err() {
            violations += 1;
            eprintln!(
                "UNEXPECTED violation at {p:?}: {:?}",
                check_safety(&out.history)
            );
        }
    }
    let mut sweep = Table::new(&[
        "runs",
        "completed reads",
        "safety violations",
        "stalled ops",
    ]);
    sweep.row_owned(vec![
        runs.to_string(),
        reads.to_string(),
        violations.to_string(),
        stalls.to_string(),
    ]);
    sweep.print("Theorem 1 sweep: safe storage under adversarial schedules");
    assert_eq!(
        violations, 0,
        "Theorem 1: the safe storage must never violate safety"
    );
    assert_eq!(
        stalls, 0,
        "Theorem 2 side-effect: no stalled ops in the sweep"
    );

    // ---- Part 2: mutation testing.
    //
    // The third column says whether the randomized hunt is *expected* to
    // expose the mutant. The conflict check is the one mechanism it cannot
    // reach: it only protects liveness, and only in the Lemma-3 case (2.b)
    // interleaving, where a Byzantine object must forge, during the read's
    // first round, the exact ⟨tsval, tsrarray⟩ tuple a concurrent write is
    // *about to* assemble — the adversary needs hindsight no reactive
    // attacker has. Its row documents the expectation instead of asserting
    // a catch; every safety-relevant mutation must be caught.
    let mutations: Vec<(&str, SafeTuning, bool)> = vec![
        (
            "safe threshold b (not b+1)",
            SafeTuning {
                safe_threshold: Some(1),
                ..SafeTuning::default()
            },
            true,
        ),
        (
            "eliminate at b+1 (not t+b+1)",
            SafeTuning {
                elim_threshold: Some(2),
                ..SafeTuning::default()
            },
            true,
        ),
        (
            "skip round 2 (fast read)",
            SafeTuning {
                skip_round2: true,
                ..SafeTuning::default()
            },
            true,
        ),
        (
            "no conflict check (liveness-only; Lemma 3 case 2.b)",
            SafeTuning {
                conflict_check: false,
                ..SafeTuning::default()
            },
            false,
        ),
        (
            "no conflict check + weak safe",
            SafeTuning {
                conflict_check: false,
                safe_threshold: Some(1),
                ..SafeTuning::default()
            },
            true,
        ),
        (
            "fast read + weak safe",
            SafeTuning {
                skip_round2: true,
                safe_threshold: Some(1),
                ..SafeTuning::default()
            },
            true,
        ),
    ];

    let mut table = Table::new(&["mutation", "caught by", "detail"]);
    for (name, tuning, must_catch) in mutations {
        let mut caught: Option<(String, String)> = None;
        // Hunt across attackers and seeds until the mutant is exposed.
        'hunt: for kind in vrr_core::attackers::AttackerKind::ALL {
            for seed in 0..60u64 {
                let cfg = StorageConfig::optimal(2, 2, 2);
                let schedule = generate(ScheduleParams::contended(6, 8, 2, seed));
                let faults = FaultPlan::maximal(&cfg, kind, vrr_sim::SimTime::from_ticks(50));
                let out = run_schedule(
                    &MutantSafeProtocol(tuning),
                    cfg,
                    &schedule,
                    &faults,
                    LatencyKind::LongTail,
                    seed,
                    &safe_corruptor,
                );
                if let Err(vs) = check_safety(&out.history) {
                    caught = Some((
                        "safety checker".into(),
                        format!("{:?} seed {seed}: {}", kind, vs[0]),
                    ));
                    break 'hunt;
                }
                if !out.all_live() {
                    caught = Some((
                        "liveness detector".into(),
                        format!("{:?} seed {seed}: {} stalled ops", kind, out.stalled_ops),
                    ));
                    break 'hunt;
                }
            }
        }
        let (by, detail) = caught.unwrap_or((
            "not caught here".into(),
            "expected: needs the omniscient interleaving — see \
             tests/conflict_check_liveness.rs, which blocks this mutant forever"
                .into(),
        ));
        table.row_owned(vec![name.to_string(), by.clone(), detail]);
        if must_catch {
            assert_ne!(
                by, "not caught here",
                "mutation '{name}' slipped through all checks"
            );
        }
    }
    table.print("Theorem 1 mutation tests: every safety-relevant mutant is exposed");
    println!("\nPaper check: Theorem 1 holds (0 violations) and the oracle has teeth. ✔");
}
