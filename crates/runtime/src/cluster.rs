//! A worker-pool host for `vrr` automata.
//!
//! The same deterministic automata that run under the simulator run here on
//! a fixed pool of worker threads with real (optionally delayed) message
//! passing — the substrate for wall-clock benchmarks and the networked
//! examples. Each worker owns a shard of process mailboxes and drains whole
//! batches per sweep; see [`crate::executor`] internals for the sweep /
//! flush / timer-wheel mechanics.

use std::fmt;

use crossbeam::channel::{bounded, Receiver};

use vrr_sim::{Automaton, Context, ProcessId};

use crate::executor::{Executor, ExecutorStats, InvokeFn, NodeCmd, WatchFn};
use crate::router::LinkPolicy;

/// Error returned by [`Cluster::try_invoke`] when the target process can no
/// longer execute closures — it was crashed (fault injection) or the
/// cluster is shutting down.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeGone(pub ProcessId);

impl fmt::Display for NodeGone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process {} is crashed or gone", self.0)
    }
}

impl std::error::Error for NodeGone {}

/// A running cluster of automata on a sharded worker pool.
///
/// Spawn processes with [`Cluster::spawn`], connect the mailboxes by
/// calling [`Cluster::seal`] once all processes exist, then drive clients
/// with [`Cluster::invoke`] / [`Cluster::watch`]. Dropping the cluster
/// shuts every worker down.
///
/// # Examples
///
/// ```
/// use vrr_runtime::{Cluster, NoDelay};
/// use vrr_sim::{from_fn, Context, ProcessId};
///
/// let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
/// let echo = cluster.spawn(from_fn(|from, n: u64, ctx: &mut Context<'_, u64>| {
///     ctx.send(from, n + 1);
/// }));
/// # let _ = echo;
/// cluster.seal();
/// ```
pub struct Cluster<M: Send + 'static> {
    executor: Executor<M>,
    sealed: bool,
}

impl<M: Send + 'static> Cluster<M> {
    /// Creates a cluster whose links obey `policy`, with one worker per
    /// available CPU.
    pub fn new(policy: Box<dyn LinkPolicy<M>>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_workers(policy, workers)
    }

    /// Creates a cluster with an explicit worker-pool size (clamped to at
    /// least one).
    pub fn with_workers(policy: Box<dyn LinkPolicy<M>>, workers: usize) -> Self {
        Cluster {
            executor: Executor::new(policy, workers),
            sealed: false,
        }
    }

    /// Spawns a process on the worker pool running `automaton`; returns its
    /// id. Ids are dense in spawn order; process `p` lives on worker
    /// `p % workers`.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Cluster::seal`].
    pub fn spawn(&mut self, automaton: Box<dyn Automaton<M>>) -> ProcessId {
        assert!(
            !self.sealed,
            "spawn all processes before sealing the cluster"
        );
        self.executor.register(automaton)
    }

    /// Marks the topology complete. (Processes discover each other lazily
    /// through the executor, so this only guards against racy late spawns.)
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Number of spawned processes.
    pub fn len(&self) -> usize {
        self.executor.len()
    }

    /// Whether no process was spawned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the worker pool.
    pub fn workers(&self) -> usize {
        self.executor.worker_count()
    }

    /// Activity counters summed over the pool — sweeps, wakeups and
    /// processed commands. An idle cluster must not accumulate wakeups.
    pub fn stats(&self) -> ExecutorStats {
        self.executor.stats()
    }

    /// Runs `f` on the concrete automaton of `pid` inside its worker, with
    /// a context whose sends go through the link policy. Blocks for the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if `pid`'s automaton is not an `A`, or if the node is crashed
    /// or gone (use [`Cluster::try_invoke`] for a recoverable variant).
    pub fn invoke<A: Automaton<M>, R: Send + 'static>(
        &self,
        pid: ProcessId,
        f: impl FnOnce(&mut A, &mut Context<'_, M>) -> R + Send + 'static,
    ) -> R {
        self.try_invoke(pid, f)
            .unwrap_or_else(|gone| panic!("invoke failed: {gone}"))
    }

    /// Like [`Cluster::invoke`], but returns [`NodeGone`] instead of
    /// panicking when `pid` was crashed (or the pool is shutting down).
    /// A panic inside `f` — including an `A` downcast mismatch — is
    /// contained by the worker: the target process is poisoned like a
    /// crash (the panic is reported on stderr) and the caller gets
    /// [`NodeGone`].
    ///
    /// # Panics
    ///
    /// Panics if `pid` was never spawned — a programming error, not a
    /// runtime fault.
    pub fn try_invoke<A: Automaton<M>, R: Send + 'static>(
        &self,
        pid: ProcessId,
        f: impl FnOnce(&mut A, &mut Context<'_, M>) -> R + Send + 'static,
    ) -> Result<R, NodeGone> {
        assert!(pid.index() < self.len(), "invoke on unspawned {pid}");
        let (tx, rx) = bounded(1);
        let boxed: InvokeFn<M> = Box::new(move |any, ctx| {
            let a = any
                .downcast_mut::<A>()
                .unwrap_or_else(|| panic!("node is not a {}", std::any::type_name::<A>()));
            let _ = tx.send(f(a, ctx));
        });
        self.executor.enqueue(pid, NodeCmd::Invoke(boxed));
        // A crashed node drops the closure, and with it the only sender.
        rx.recv().map_err(|_| NodeGone(pid))
    }

    /// Registers a watcher on `pid`: after every step, `check` runs against
    /// the automaton; the first `Some(r)` is delivered on the returned
    /// channel. Used to await operation completion without polling.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was never spawned.
    pub fn watch<A: Automaton<M>, R: Send + 'static>(
        &self,
        pid: ProcessId,
        mut check: impl FnMut(&A) -> Option<R> + Send + 'static,
    ) -> Receiver<R> {
        assert!(pid.index() < self.len(), "watch on unspawned {pid}");
        let (tx, rx) = bounded(1);
        let boxed: WatchFn = Box::new(move |any| {
            let a = any
                .downcast_ref::<A>()
                .unwrap_or_else(|| panic!("node is not a {}", std::any::type_name::<A>()));
            match check(a) {
                Some(r) => {
                    let _ = tx.send(r);
                    true
                }
                None => false,
            }
        });
        self.executor.enqueue(pid, NodeCmd::Watch(boxed));
        rx
    }

    /// Crashes `pid`: it stops processing deliveries and invokes (watchers
    /// may still inspect its frozen state).
    ///
    /// # Panics
    ///
    /// Panics if `pid` was never spawned.
    pub fn crash(&self, pid: ProcessId) {
        assert!(pid.index() < self.len(), "crash on unspawned {pid}");
        self.executor.enqueue(pid, NodeCmd::Crash);
    }

    /// Injects a message from `from` to `to` through the link policy
    /// (external stimulus, like the simulator's `send_external`).
    pub fn send_external(&self, from: ProcessId, to: ProcessId, msg: M) {
        self.executor.route(from, to, msg);
    }
}

impl<M: Send + 'static> Drop for Cluster<M> {
    fn drop(&mut self) {
        self.executor.shutdown_and_join();
    }
}

impl<M: Send + 'static> fmt::Debug for Cluster<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.len())
            .field("workers", &self.workers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use vrr_sim::from_fn;

    use super::*;
    use crate::router::{FixedDelay, NoDelay};

    /// Counts the values it receives.
    struct Counter {
        total: u64,
        seen: u32,
    }

    impl Automaton<u64> for Counter {
        fn on_message(&mut self, _from: ProcessId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.total += msg;
            self.seen += 1;
        }
    }

    #[test]
    fn deliver_and_watch() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        let doubler = cluster.spawn(from_fn(move |from, n: u64, ctx: &mut Context<'_, u64>| {
            ctx.send(from, n * 2);
        }));
        cluster.seal();

        let done = cluster.watch(counter, |c: &Counter| (c.seen >= 3).then_some(c.total));
        for i in 1..=3u64 {
            cluster.send_external(counter, doubler, i);
        }
        let total = done
            .recv_timeout(Duration::from_secs(5))
            .expect("watch fires");
        assert_eq!(total, 12, "2 + 4 + 6");
    }

    /// A client automaton driven purely by invoke.
    struct Pinger {
        target: ProcessId,
        sent: u32,
    }

    impl Automaton<u64> for Pinger {
        fn on_message(&mut self, _from: ProcessId, _msg: u64, _ctx: &mut Context<'_, u64>) {}
    }

    #[test]
    fn invoke_runs_in_worker_and_sends() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        let pinger = cluster.spawn(Box::new(Pinger {
            target: counter,
            sent: 0,
        }));
        cluster.seal();

        let done = cluster.watch(counter, |c: &Counter| (c.seen >= 1).then_some(c.total));
        let sent_count = cluster.invoke(pinger, |p: &mut Pinger, ctx| {
            ctx.send(p.target, 41);
            p.sent += 1;
            p.sent
        });
        assert_eq!(sent_count, 1, "invoke returns the closure's result");
        assert_eq!(done.recv_timeout(Duration::from_secs(5)).unwrap(), 41);
    }

    #[test]
    fn crash_stops_processing() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();
        cluster.crash(counter);
        cluster.send_external(counter, counter, 5);
        std::thread::sleep(Duration::from_millis(50));
        // The watcher registered after the crash still inspects state
        // (crash stops *processing*, not introspection).
        let rx = cluster.watch(counter, |c: &Counter| Some(c.seen));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 0);
    }

    #[test]
    fn try_invoke_on_crashed_node_reports_node_gone() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();
        cluster.crash(counter);
        let got = cluster.try_invoke(counter, |c: &mut Counter, _ctx| c.seen);
        assert_eq!(got, Err(NodeGone(counter)));
    }

    #[test]
    #[should_panic(expected = "invoke failed")]
    fn invoke_on_crashed_node_panics() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();
        cluster.crash(counter);
        let _ = cluster.invoke(counter, |c: &mut Counter, _ctx| c.seen);
    }

    #[test]
    fn panicking_invoke_poisons_only_its_process() {
        // Both processes share the one worker: a panic inside an invoke
        // (here: a wrong-type downcast) must not kill the worker thread.
        let mut cluster: Cluster<u64> = Cluster::with_workers(Box::new(NoDelay), 1);
        let victim = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        let healthy = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();

        let gone = cluster.try_invoke(victim, |_p: &mut Pinger, _ctx| ());
        assert_eq!(gone, Err(NodeGone(victim)), "downcast panic -> NodeGone");

        // The worker survived: its other process still delivers and
        // answers invokes; the poisoned one behaves like a crashed node.
        let done = cluster.watch(healthy, |c: &Counter| (c.seen >= 1).then_some(c.total));
        cluster.send_external(healthy, healthy, 9);
        assert_eq!(done.recv_timeout(Duration::from_secs(5)).unwrap(), 9);
        assert_eq!(
            cluster.try_invoke(healthy, |c: &mut Counter, _ctx| c.seen),
            Ok(1)
        );
        assert_eq!(
            cluster.try_invoke(victim, |c: &mut Counter, _ctx| c.seen),
            Err(NodeGone(victim)),
            "poisoned process stays gone even for well-typed invokes"
        );
    }

    #[test]
    #[should_panic(expected = "watch on unspawned")]
    fn watch_on_unspawned_pid_panics() {
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(NoDelay));
        let _ = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();
        let _ = cluster.watch(ProcessId(99), |c: &Counter| Some(c.seen));
    }

    #[test]
    fn single_worker_pool_hosts_many_processes() {
        let mut cluster: Cluster<u64> = Cluster::with_workers(Box::new(NoDelay), 1);
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        let echoes: Vec<ProcessId> = (0..32)
            .map(|_| {
                cluster.spawn(from_fn(move |from, n: u64, ctx: &mut Context<'_, u64>| {
                    ctx.send(from, n);
                }))
            })
            .collect();
        cluster.seal();
        let done = cluster.watch(counter, |c: &Counter| (c.seen >= 32).then_some(c.total));
        for (i, e) in echoes.iter().enumerate() {
            cluster.send_external(counter, *e, i as u64);
        }
        let total = done
            .recv_timeout(Duration::from_secs(5))
            .expect("watch fires");
        assert_eq!(total, (0..32).sum::<u64>());
    }

    #[test]
    fn delayed_links_deliver_after_delay() {
        let mut cluster: Cluster<u64> =
            Cluster::new(Box::new(FixedDelay(Duration::from_millis(30))));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();
        cluster.send_external(counter, counter, 7);
        std::thread::sleep(Duration::from_millis(5));
        let rx = cluster.watch(counter, |c: &Counter| Some(c.seen));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap(),
            0,
            "not yet due"
        );
        let rx = cluster.watch(counter, |c: &Counter| (c.seen >= 1).then_some(c.total));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(2)).unwrap(),
            7,
            "delivered after the delay"
        );
    }

    #[test]
    fn dropping_policy_loses_messages() {
        use crate::router::{LinkAction, LinkPolicy};
        struct DropAll;
        impl LinkPolicy<u64> for DropAll {
            fn action(&mut self, _: ProcessId, _: ProcessId, _: &u64) -> LinkAction {
                LinkAction::Drop
            }
        }
        let mut cluster: Cluster<u64> = Cluster::new(Box::new(DropAll));
        let counter = cluster.spawn(Box::new(Counter { total: 0, seen: 0 }));
        cluster.seal();
        cluster.send_external(counter, counter, 1);
        std::thread::sleep(Duration::from_millis(30));
        let rx = cluster.watch(counter, |c: &Counter| Some(c.seen));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 0);
    }
}
