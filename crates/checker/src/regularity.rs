//! The regularity checker (§2.2).
//!
//! "A partial run satisfies regularity if: (1) if a READ returns `x` then
//! there is `k` such that `val_k = x`, (2) if a READ `rd` is complete and it
//! succeeds some WRITE `wr_k` (`k ≥ 1`), then `rd` returns `val_l` such that
//! `l ≥ k`, and (3) if a READ `rd` returns `val_k` (`k ≥ 1`), then `wr_k`
//! either precedes `rd` or is concurrent with `rd`."

use std::fmt;

use crate::history::{OpHistory, OpKind};
use crate::report::{CheckResult, Collector, ViolationKind};

/// Checks the regularity property against a history.
///
/// # Errors
///
/// Returns every violated clause with the offending reads identified.
pub fn check_regularity<V: Clone + Eq + fmt::Debug>(history: &OpHistory<V>) -> CheckResult {
    let mut out = Collector::new();
    if let Err(e) = history.validate() {
        out.push(ViolationKind::MalformedHistory, e);
        return out.finish();
    }

    let writes = history.writes();
    for (ridx, rd) in history.complete_reads().iter().enumerate() {
        let OpKind::Read { reader, seq, value } = &rd.kind else {
            unreachable!()
        };

        // Clause 1: the returned value must have been written (or be ⊥,
        // which is val_0 and always "written" by initialization).
        if *seq > 0 {
            match history.written_value(*seq) {
                None => {
                    out.push(
                        ViolationKind::RegularityPhantomValue,
                        format!(
                            "read #{ridx} by r{reader} returned seq {seq}, \
                             but only {} writes exist",
                            writes.len()
                        ),
                    );
                    continue;
                }
                Some(val_k) if value.as_ref() != Some(val_k) => {
                    out.push(
                        ViolationKind::RegularityPhantomValue,
                        format!(
                            "read #{ridx} by r{reader} returned {value:?} under seq {seq}, \
                             but write #{seq} wrote {val_k:?}"
                        ),
                    );
                    continue;
                }
                Some(_) => {}
            }
        } else if value.is_some() {
            out.push(
                ViolationKind::RegularityPhantomValue,
                format!("read #{ridx} by r{reader} returned {value:?} under seq 0 (⊥)"),
            );
            continue;
        }

        // Clause 2: no stale reads past a completed write.
        let newest_preceding = writes
            .iter()
            .filter(|wr| wr.precedes(rd))
            .map(|wr| match &wr.kind {
                OpKind::Write { seq, .. } => *seq,
                OpKind::Read { .. } => unreachable!(),
            })
            .max()
            .unwrap_or(0);
        if *seq < newest_preceding {
            out.push(
                ViolationKind::RegularityStaleValue,
                format!(
                    "read #{ridx} by r{reader} returned seq {seq} \
                     but write #{newest_preceding} precedes it"
                ),
            );
        }

        // Clause 3: the returned write precedes or is concurrent — i.e. the
        // read must NOT precede it.
        if *seq > 0 {
            if let Some(wr_k) = writes.get((*seq - 1) as usize) {
                if rd.precedes(wr_k) {
                    out.push(
                        ViolationKind::RegularityFutureValue,
                        format!(
                            "read #{ridx} by r{reader} returned seq {seq} \
                             but completed before write #{seq} was invoked"
                        ),
                    );
                }
            }
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interleaved() -> OpHistory<u64> {
        let mut h = OpHistory::new();
        h.push_write(1, 10, 0, Some(5));
        h.push_write(2, 20, 10, Some(15));
        h
    }

    #[test]
    fn clean_history_passes() {
        let mut h = interleaved();
        h.push_read(0, 1, Some(10), 6, Some(8)); // between writes: val_1
        h.push_read(0, 2, Some(20), 12, Some(18)); // concurrent with write 2: either ok
        h.push_read(0, 2, Some(20), 20, Some(22));
        assert!(check_regularity(&h).is_ok());
    }

    #[test]
    fn concurrent_read_may_return_old_value() {
        let mut h = interleaved();
        // Concurrent with write 2: returning write 1 is regular (unlike atomic).
        h.push_read(0, 1, Some(10), 12, Some(14));
        assert!(check_regularity(&h).is_ok());
    }

    #[test]
    fn phantom_value_is_flagged_even_under_concurrency() {
        let mut h = interleaved();
        // Concurrent with write 2, but 777 was never written: clause 1.
        h.push_read(0, 7, Some(777), 12, Some(14));
        let err = check_regularity(&h).unwrap_err();
        assert_eq!(err[0].kind, ViolationKind::RegularityPhantomValue);
    }

    #[test]
    fn wrong_value_for_seq_is_phantom() {
        let mut h = interleaved();
        h.push_read(0, 2, Some(10), 20, Some(22)); // seq 2 wrote 20, not 10
        let err = check_regularity(&h).unwrap_err();
        assert_eq!(err[0].kind, ViolationKind::RegularityPhantomValue);
    }

    #[test]
    fn stale_read_is_flagged() {
        let mut h = interleaved();
        h.push_read(0, 1, Some(10), 20, Some(22)); // succeeds write 2, returns write 1
        let err = check_regularity(&h).unwrap_err();
        assert_eq!(err[0].kind, ViolationKind::RegularityStaleValue);
    }

    #[test]
    fn future_read_is_flagged() {
        let mut h = OpHistory::new();
        h.push_read(0, 1, Some(10u64), 0, Some(2)); // completes before write 1 exists
        h.push_write(1, 10, 5, Some(8));
        let err = check_regularity(&h).unwrap_err();
        assert!(err
            .iter()
            .any(|v| v.kind == ViolationKind::RegularityFutureValue));
    }

    #[test]
    fn bottom_after_writes_is_stale() {
        let mut h = interleaved();
        h.push_read(0, 0, None, 20, Some(22));
        let err = check_regularity(&h).unwrap_err();
        assert_eq!(err[0].kind, ViolationKind::RegularityStaleValue);
    }

    #[test]
    fn bottom_with_value_is_phantom() {
        let mut h = OpHistory::new();
        h.push_read(0, 0, Some(5u64), 0, Some(2));
        let err = check_regularity(&h).unwrap_err();
        assert_eq!(err[0].kind, ViolationKind::RegularityPhantomValue);
    }

    #[test]
    fn read_concurrent_with_its_write_is_fine() {
        let mut h = OpHistory::new();
        h.push_write(1, 10u64, 0, Some(20));
        h.push_read(0, 1, Some(10), 5, Some(9)); // overlaps write 1
        assert!(check_regularity(&h).is_ok());
    }
}
