//! Property-based tests over the whole stack.
//!
//! Three families: (1) the protocols under randomly generated schedules,
//! fault plans and latency regimes keep their guarantees; (2) the checkers
//! agree with a reference register semantics on synthetic histories;
//! (3) the lower-bound harness convicts randomly drawn threshold rules.

use proptest::prelude::*;

use vrr::checker::{check_atomicity, check_regularity, check_safety, OpHistory};
use vrr::core::{RegularProtocol, SafeProtocol, StorageConfig};
use vrr::lowerbound::{execute_prop1, LitePairSpec, ReadRule};
use vrr::workload::{
    generate, regular_corruptor, run_schedule, safe_corruptor, FaultPlan, LatencyKind,
    ScheduleParams,
};

// ---------------------------------------------------------------------------
// Family 1: protocol properties under generated scenarios.
// ---------------------------------------------------------------------------

fn latency_strategy() -> impl Strategy<Value = LatencyKind> {
    prop_oneof![
        Just(LatencyKind::Unit),
        (1u64..5, 5u64..30).prop_map(|(a, b)| LatencyKind::Uniform(a, b)),
        Just(LatencyKind::LongTail),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn safe_storage_safety_is_schedule_independent(
        seed in 0u64..10_000,
        t in 1usize..=3,
        b_rel in 0usize..=2,
        writes in 1u64..=6,
        reads in 1u64..=6,
        gap in 1u64..=60,
        latency in latency_strategy(),
    ) {
        let b = (b_rel % t.max(1)) + 1;
        let b = b.min(t);
        let cfg = StorageConfig::optimal(t, b, 2);
        let schedule = generate(ScheduleParams {
            writes, reads_per_reader: reads, readers: 2, mean_gap: gap, seed,
        });
        let faults = FaultPlan::random(&cfg, 200, seed);
        let out = run_schedule(
            &SafeProtocol, cfg, &schedule, &faults, latency, seed, &safe_corruptor,
        );
        prop_assert!(out.all_live(), "stalled {}", out.stalled_ops);
        prop_assert!(check_safety(&out.history).is_ok());
        prop_assert!(out.max_read_rounds() <= 2);
        prop_assert!(out.max_write_rounds() <= 2);
    }

    #[test]
    fn regular_storage_regularity_is_schedule_independent(
        seed in 0u64..10_000,
        t in 1usize..=3,
        optimized in any::<bool>(),
        writes in 1u64..=6,
        reads in 1u64..=5,
        gap in 1u64..=40,
        latency in latency_strategy(),
    ) {
        let b = 1usize;
        let cfg = StorageConfig::optimal(t, b, 2);
        let protocol = if optimized {
            RegularProtocol::optimized()
        } else {
            RegularProtocol::full()
        };
        let schedule = generate(ScheduleParams {
            writes, reads_per_reader: reads, readers: 2, mean_gap: gap, seed,
        });
        let faults = FaultPlan::random(&cfg, 200, seed);
        let out = run_schedule(
            &protocol, cfg, &schedule, &faults, latency, seed, &regular_corruptor,
        );
        prop_assert!(out.all_live());
        prop_assert!(check_regularity(&out.history).is_ok());
        prop_assert!(out.max_read_rounds() <= 2);
    }
}

// ---------------------------------------------------------------------------
// Family 2: checker soundness against a reference register.
// ---------------------------------------------------------------------------

/// Builds a well-formed history from a sequence of abstract moves, playing
/// a *perfect atomic register* (reads return the newest completed write).
/// Such histories must satisfy all three checkers.
fn atomic_reference_history(ops: Vec<(bool, u8)>) -> OpHistory<u64> {
    let mut h = OpHistory::new();
    let mut now = 0u64;
    let mut seq = 0u64;
    let mut readers_busy_until = [0u64; 2];
    for (is_write, dur) in ops {
        let dur = u64::from(dur % 7) + 1;
        now += 2;
        if is_write {
            seq += 1;
            h.push_write(seq, seq * 10, now, Some(now + dur));
            now += dur; // writes are sequential on the single writer
        } else {
            // Alternate readers; a reader's next read starts after its
            // last, and the global clock advances with it so the value
            // returned (the newest write completed so far) stays correct
            // relative to every later-emitted operation.
            let r = (now % 2) as usize;
            now = now.max(readers_busy_until[r]);
            let start = now;
            let end = start + dur;
            let val = seq; // newest completed write (writes never overlap reads' starts)
            h.push_read(r, val, (val > 0).then_some(val * 10), start, Some(end));
            readers_busy_until[r] = end + 1;
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn checkers_accept_perfect_register_histories(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 0..30)
    ) {
        let h = atomic_reference_history(ops);
        prop_assert!(h.validate().is_ok());
        prop_assert!(check_safety(&h).is_ok(), "{:?}", check_safety(&h));
        prop_assert!(check_regularity(&h).is_ok(), "{:?}", check_regularity(&h));
        prop_assert!(check_atomicity(&h).is_ok(), "{:?}", check_atomicity(&h));
    }

    #[test]
    fn checkers_reject_corrupted_isolated_reads(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 4..30),
        corrupt_delta in 1u64..5,
    ) {
        // Corrupt the last isolated read by shifting its seq: safety and
        // regularity must both object (the read is isolated, so safety
        // fires; phantom/stale fires for regularity).
        let mut h = atomic_reference_history(ops);
        let writes: u64 = h.writes().len() as u64;
        prop_assume!(writes >= 1);
        // Append an isolated read far in the future with a wrong value.
        let wrong = writes + corrupt_delta;
        h.push_read(0, wrong, Some(wrong * 10), 1_000_000, Some(1_000_010));
        prop_assert!(check_safety(&h).is_err());
        prop_assert!(check_regularity(&h).is_err());
    }

    #[test]
    fn stale_read_fails_safety_and_regularity_but_only_if_isolated(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 4..30),
    ) {
        let mut h = atomic_reference_history(ops);
        let writes = h.writes().len() as u64;
        prop_assume!(writes >= 2);
        // A far-future read returning write 1 instead of the newest.
        h.push_read(1, 1, Some(10), 2_000_000, Some(2_000_005));
        prop_assert!(check_safety(&h).is_err());
        let reg = check_regularity(&h);
        prop_assert!(reg.is_err(), "stale isolated read violates clause 2");
    }
}

// ---------------------------------------------------------------------------
// Family 3: the impossibility is rule-independent.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn any_threshold_rule_violates_prop1(
        t in 1usize..=4,
        b_raw in 1usize..=4,
        k_raw in 1usize..=12,
        v1 in 1u64..u64::MAX,
    ) {
        let b = b_raw.min(t);
        let s = 2 * t + 2 * b;
        let k = (k_raw % s) + 1;
        let spec = LitePairSpec::new(s, t, b, ReadRule::Threshold(k));
        let report = execute_prop1(&spec, b, v1);
        prop_assert!(report.verdict.is_violation(), "t={t} b={b} k={k}");
    }
}
