//! **E-T2 — Theorem 2**: the §4 algorithm is wait-free — every operation by
//! a non-crashing client completes, whatever happens to other clients and
//! to up to `t` objects.
//!
//! Three scenario families:
//!
//! 1. the sweep of E-T1 rechecked for liveness (no stalled ops);
//! 2. the *writer crashes mid-write* and readers keep completing — the
//!    signature wait-freedom scenario (a reader must never wait for the
//!    writer to finish);
//! 3. maximum-damage runs: `b` Byzantine + `t − b` crashes landing during
//!    operations, with long-tail asynchrony.
//!
//! Expected shape: every invoked operation completes, in ≤ 2 rounds.
//! Run with `cargo run --release -p vrr-bench --bin thm2_waitfree`.

use vrr_bench::Table;
use vrr_core::attackers::AttackerKind;
use vrr_core::{RegisterProtocol, SafeProtocol, StorageConfig};
use vrr_sim::{SimTime, World};
use vrr_workload::{
    generate, grid, run_schedule, safe_corruptor, FaultPlan, LatencyKind, ScheduleParams,
};

/// Scenario 2: the writer crashes while its WRITE is in flight; a reader
/// must still complete (and return either the old or the new value — the
/// crashed write is concurrent, so both are allowed).
fn writer_crash_scenario(t: usize, b: usize, seed: u64, crash_after_steps: u64) -> (bool, u32) {
    let cfg = StorageConfig::optimal(t, b, 1);
    let mut world: World<vrr_core::Msg<u64>> = World::new(seed);
    let dep = RegisterProtocol::<u64>::deploy(&SafeProtocol, cfg, &mut world);
    world.start();

    // A completed write so the register holds 10.
    vrr_core::run_write(&SafeProtocol, &dep, &mut world, 10u64);

    // Start a second write and kill the writer mid-flight.
    let _op = RegisterProtocol::<u64>::invoke_write(&SafeProtocol, &dep, &mut world, 20u64);
    for _ in 0..crash_after_steps {
        world.step();
    }
    world.crash(dep.writer);

    // The reader must complete regardless.
    let op = RegisterProtocol::<u64>::invoke_read(&SafeProtocol, &dep, &mut world, 0);
    let done = world.run_until(
        |w| RegisterProtocol::<u64>::read_outcome(&SafeProtocol, &dep, w, 0, op).is_some(),
        vrr_core::OP_STEP_LIMIT,
    );
    if !done {
        return (false, 0);
    }
    let rep = RegisterProtocol::<u64>::read_outcome(&SafeProtocol, &dep, &world, 0, op)
        .expect("completed");
    let value_ok = rep.value == Some(10) || rep.value == Some(20);
    (done && value_ok, rep.rounds)
}

fn main() {
    // ---- Family 1: liveness across the standard sweep.
    let points = grid(&[1, 2, 3], &[1, 2, 3], 0..25u64);
    let mut total_ops = 0usize;
    let mut stalled = 0usize;
    for p in &points {
        let cfg = StorageConfig::optimal(p.t, p.b, 2);
        let schedule = generate(ScheduleParams::contended(5, 6, 2, p.seed));
        let faults = match p.attacker {
            None => FaultPlan::random(&cfg, 200, p.seed),
            Some(kind) => FaultPlan::maximal(&cfg, kind, SimTime::from_ticks(40)),
        };
        let out = run_schedule(
            &SafeProtocol,
            cfg,
            &schedule,
            &faults,
            LatencyKind::LongTail,
            p.seed,
            &safe_corruptor,
        );
        total_ops += schedule.len();
        stalled += out.stalled_ops;
    }
    let mut fam1 = Table::new(&["sweep points", "ops invoked", "ops stalled"]);
    fam1.row_owned(vec![
        points.len().to_string(),
        total_ops.to_string(),
        stalled.to_string(),
    ]);
    fam1.print("Wait-freedom, family 1: adversarial sweep");
    assert_eq!(stalled, 0, "no operation may stall");

    // ---- Family 2: writer crash mid-write.
    let mut fam2 = Table::new(&["t", "b", "crash point (steps)", "reads completed", "rounds"]);
    for (t, b) in [(1, 1), (2, 1), (2, 2), (3, 2)] {
        for crash_after in [0, 1, 3, 7, 15] {
            let (ok, rounds) = writer_crash_scenario(t, b, 17 + crash_after, crash_after);
            fam2.row_owned(vec![
                t.to_string(),
                b.to_string(),
                crash_after.to_string(),
                if ok { "yes".into() } else { "NO".into() },
                rounds.to_string(),
            ]);
            assert!(
                ok,
                "reader stalled or returned garbage after writer crash (t={t} b={b})"
            );
            assert_eq!(rounds, 2);
        }
    }
    fam2.print("Wait-freedom, family 2: writer crashes mid-WRITE, reads still finish");

    // ---- Family 3: maximum damage during operations.
    let mut fam3 = Table::new(&["t", "b", "attacker", "runs", "stalled"]);
    for (t, b) in [(2, 1), (3, 2), (3, 3)] {
        for kind in AttackerKind::ALL {
            let mut stalled = 0usize;
            let runs = 15u64;
            for seed in 0..runs {
                let cfg = StorageConfig::optimal(t, b, 2);
                let schedule = generate(ScheduleParams::contended(8, 8, 2, seed));
                // Crashes land mid-run, right in the thick of traffic.
                let mut faults = FaultPlan::maximal(&cfg, kind, SimTime::from_ticks(25));
                for (i, (_, at)) in faults.crashes.iter_mut().enumerate() {
                    *at = SimTime::from_ticks(10 + 7 * i as u64);
                }
                let out = run_schedule(
                    &SafeProtocol,
                    cfg,
                    &schedule,
                    &faults,
                    LatencyKind::Uniform(1, 20),
                    seed,
                    &safe_corruptor,
                );
                stalled += out.stalled_ops;
            }
            fam3.row_owned(vec![
                t.to_string(),
                b.to_string(),
                format!("{kind:?}"),
                runs.to_string(),
                stalled.to_string(),
            ]);
            assert_eq!(stalled, 0, "t={t} b={b} {kind:?}");
        }
    }
    fam3.print("Wait-freedom, family 3: crashes landing mid-operation");
    println!("\nPaper check: Theorem 2 holds — every operation completed. ✔");
}
