//! The scheduling adversary.
//!
//! Asynchrony in the paper's proofs is wielded by an adversary that decides
//! which messages are delayed ("remain in transit") and which processes crash.
//! [`Adversary`] is a programmable pipeline of interception rules evaluated
//! on every sent message; held messages stay "in transit" inside the
//! [`crate::World`] until released, exactly like the delayed messages of
//! runs `run'2`/`run3` in Figure 1.

use std::fmt;

use crate::envelope::Envelope;
use crate::process::ProcessId;

/// What to do with a freshly sent message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Deliver with the latency model's delay.
    Deliver,
    /// Deliver with the model delay plus `extra` ticks.
    DeliverAfter(u64),
    /// Keep in transit until explicitly released (or forever).
    Hold,
    /// Destroy the message. Only sound against *crashed* processes or in
    /// experiments that model lossy behaviour deliberately: the paper assumes
    /// reliable channels between correct processes.
    Drop,
}

/// Identifies an installed rule so it can be removed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RuleId(u64);

/// A rule's decision procedure: `Some(action)` claims the message.
type DecideFn<M> = Box<dyn FnMut(&Envelope<M>) -> Option<Action> + Send>;

struct Rule<M> {
    id: RuleId,
    name: String,
    decide: DecideFn<M>,
}

impl<M> fmt::Debug for Rule<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rule({:?}, {})", self.id, self.name)
    }
}

/// An ordered pipeline of message-interception rules.
///
/// Rules are evaluated in installation order; the first rule returning
/// `Some(action)` wins, and a message no rule claims is delivered normally.
///
/// # Examples
///
/// ```
/// use vrr_sim::{Adversary, Action, ProcessId};
///
/// let mut adv: Adversary<&'static str> = Adversary::new();
/// // Keep every message from the writer (p0) to object p3 in transit,
/// // as the Figure-1 runs do for block T1.
/// adv.hold_link(ProcessId(0), ProcessId(3));
/// ```
pub struct Adversary<M> {
    rules: Vec<Rule<M>>,
    next_id: u64,
}

impl<M> Default for Adversary<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> fmt::Debug for Adversary<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Adversary")
            .field("rules", &self.rules)
            .finish()
    }
}

impl<M> Adversary<M> {
    /// An adversary with no rules: fully fair scheduling.
    pub fn new() -> Self {
        Adversary {
            rules: Vec::new(),
            next_id: 0,
        }
    }

    /// Installs `decide` under `name`; returns a handle for removal.
    pub fn install<F>(&mut self, name: impl Into<String>, decide: F) -> RuleId
    where
        F: FnMut(&Envelope<M>) -> Option<Action> + Send + 'static,
    {
        let id = RuleId(self.next_id);
        self.next_id += 1;
        self.rules.push(Rule {
            id,
            name: name.into(),
            decide: Box::new(decide),
        });
        id
    }

    /// Removes a rule. Returns whether it existed.
    pub fn remove(&mut self, id: RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }

    /// Removes every rule.
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decides the fate of `env`.
    pub fn decide(&mut self, env: &Envelope<M>) -> Action {
        for rule in &mut self.rules {
            if let Some(action) = (rule.decide)(env) {
                return action;
            }
        }
        Action::Deliver
    }

    // ---- convenience rule constructors -------------------------------------

    /// Holds every message on the directed link `from → to`.
    pub fn hold_link(&mut self, from: ProcessId, to: ProcessId) -> RuleId {
        self.install(format!("hold {from:?}→{to:?}"), move |e| {
            e.on_link(from, to).then_some(Action::Hold)
        })
    }

    /// Holds every message addressed to `to`.
    pub fn hold_to(&mut self, to: ProcessId) -> RuleId {
        self.install(format!("hold →{to:?}"), move |e| {
            (e.to == to).then_some(Action::Hold)
        })
    }

    /// Holds every message sent by `from`.
    pub fn hold_from(&mut self, from: ProcessId) -> RuleId {
        self.install(format!("hold {from:?}→"), move |e| {
            (e.from == from).then_some(Action::Hold)
        })
    }

    /// Drops every message on the directed link `from → to`.
    pub fn drop_link(&mut self, from: ProcessId, to: ProcessId) -> RuleId {
        self.install(format!("drop {from:?}→{to:?}"), move |e| {
            e.on_link(from, to).then_some(Action::Drop)
        })
    }

    /// Adds `extra` ticks of delay to every message addressed to `to`.
    pub fn slow_to(&mut self, to: ProcessId, extra: u64) -> RuleId {
        self.install(format!("slow →{to:?} +{extra}"), move |e| {
            (e.to == to).then_some(Action::DeliverAfter(extra))
        })
    }

    /// Partitions `group` from the rest: holds every message crossing the
    /// boundary in either direction.
    pub fn partition(&mut self, group: Vec<ProcessId>) -> RuleId {
        self.install("partition", move |e| {
            let from_in = group.contains(&e.from);
            let to_in = group.contains(&e.to);
            (from_in != to_in).then_some(Action::Hold)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::MsgId;
    use crate::time::SimTime;

    fn env(from: usize, to: usize) -> Envelope<u8> {
        Envelope {
            id: MsgId(0),
            from: ProcessId(from),
            to: ProcessId(to),
            msg: 0,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn default_is_deliver() {
        let mut adv: Adversary<u8> = Adversary::new();
        assert!(adv.is_empty());
        assert_eq!(adv.decide(&env(0, 1)), Action::Deliver);
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut adv: Adversary<u8> = Adversary::new();
        adv.hold_to(ProcessId(1));
        adv.drop_link(ProcessId(0), ProcessId(1));
        assert_eq!(adv.decide(&env(0, 1)), Action::Hold);
        assert_eq!(adv.decide(&env(0, 2)), Action::Deliver);
    }

    #[test]
    fn remove_restores_delivery() {
        let mut adv: Adversary<u8> = Adversary::new();
        let id = adv.hold_link(ProcessId(2), ProcessId(3));
        assert_eq!(adv.decide(&env(2, 3)), Action::Hold);
        assert!(adv.remove(id));
        assert!(!adv.remove(id));
        assert_eq!(adv.decide(&env(2, 3)), Action::Deliver);
    }

    #[test]
    fn partition_holds_cross_traffic_both_ways() {
        let mut adv: Adversary<u8> = Adversary::new();
        adv.partition(vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(adv.decide(&env(0, 2)), Action::Hold);
        assert_eq!(adv.decide(&env(2, 0)), Action::Hold);
        assert_eq!(adv.decide(&env(0, 1)), Action::Deliver);
        assert_eq!(adv.decide(&env(2, 3)), Action::Deliver);
    }

    #[test]
    fn slow_to_adds_delay() {
        let mut adv: Adversary<u8> = Adversary::new();
        adv.slow_to(ProcessId(5), 11);
        assert_eq!(adv.decide(&env(1, 5)), Action::DeliverAfter(11));
    }

    #[test]
    fn clear_removes_everything() {
        let mut adv: Adversary<u8> = Adversary::new();
        adv.hold_to(ProcessId(1));
        adv.hold_from(ProcessId(2));
        assert_eq!(adv.len(), 2);
        adv.clear();
        assert_eq!(adv.decide(&env(2, 1)), Action::Deliver);
    }
}
