//! The protocol message vocabulary.
//!
//! One message enum serves both the safe protocol (Figures 2–4) and the
//! regular protocol (Figures 5–6): writes are identical, and read ACKs come
//! in a safe flavour (current `pw`/`w`) and a regular flavour (a history).
//!
//! The one-round fast path (armed at `S ≥ 2t + 2b + 1`, see
//! [`crate::StorageConfig::fast_read_quorum`]) adds **no** message kinds:
//! a round-1 `READ_ACK` quorum may simply complete the read without the
//! `READ2` broadcast ever being sent, so objects cannot tell a fast read
//! from the first round of a two-round one.

use std::fmt;

use serde::{Deserialize, Serialize};
use vrr_sim::SimMessage;

use crate::types::{History, Timestamp, TsVal, Value, WTuple};

/// Which round of a READ a message belongs to (`READ1`/`READ2`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ReadRound {
    /// First round.
    R1,
    /// Second round.
    R2,
}

impl ReadRound {
    /// 1-based round number.
    pub fn number(self) -> u32 {
        match self {
            ReadRound::R1 => 1,
            ReadRound::R2 => 2,
        }
    }
}

/// A message of the safe or regular storage protocol.
///
/// The serde derives are nominal under the vendored no-op shim; the actual
/// byte encoding used by `vrr-net` is the deterministic hand-rolled codec in
/// [`crate::wire`].
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Msg<V> {
    /// `PW⟨ts, pw, w⟩`: first write round (Figure 2 line 5).
    Pw {
        /// The write timestamp.
        ts: Timestamp,
        /// The pair being written.
        pw: TsVal<V>,
        /// The previous write's `w` tuple.
        w: WTuple<V>,
    },
    /// `PW_ACK⟨ts, tsr⟩`: object's reply carrying its reader-timestamp
    /// vector (Figure 3 line 6).
    PwAck {
        /// Echo of the write timestamp.
        ts: Timestamp,
        /// The object's `tsr[1..R]` vector (reader index → timestamp).
        tsr: std::collections::BTreeMap<usize, u64>,
    },
    /// `W⟨ts, pw, w⟩`: second write round (Figure 2 line 8).
    W {
        /// The write timestamp.
        ts: Timestamp,
        /// The pair being written.
        pw: TsVal<V>,
        /// The tuple `⟨pw, currenttsrarray⟩` assembled after `PW`.
        w: WTuple<V>,
    },
    /// `WRITE_ACK⟨ts⟩` (Figure 3 line 11).
    WAck {
        /// Echo of the write timestamp.
        ts: Timestamp,
    },
    /// `READk⟨tsr⟩` from reader `j` (Figure 4 lines 10/13).
    ///
    /// `since` is `None` in the paper-faithful protocols; the §5.1
    /// optimization sets it to the reader's cached timestamp so objects ship
    /// only a history suffix.
    ///
    /// `ack` is the history-GC acknowledgement (an extension over the
    /// paper): the highest write timestamp this reader has *returned* from
    /// a completed READ. Regular objects running
    /// [`crate::regular::HistoryRetention::ReaderAck`] collect these into a
    /// per-reader ack vector and truncate history entries every reader has
    /// moved past; the safe protocol keeps no history and always sends
    /// [`Timestamp::ZERO`].
    Read {
        /// Round this request opens.
        round: ReadRound,
        /// The reader's index `j`.
        reader: usize,
        /// The reader's fresh timestamp `tsr'_j`.
        tsr: u64,
        /// History suffix start for the optimized regular protocol.
        since: Option<Timestamp>,
        /// Highest write timestamp the reader has safely returned
        /// (history-GC acknowledgement; `Timestamp::ZERO` before the first
        /// completed read and in the safe protocol).
        ack: Timestamp,
    },
    /// `READk_ACK⟨tsr, pw, w⟩`: safe-protocol reply (Figure 3 line 16).
    ReadAckSafe {
        /// Round being answered.
        round: ReadRound,
        /// Echo of the reader timestamp this ACK answers.
        tsr: u64,
        /// The object's current `pw` field.
        pw: TsVal<V>,
        /// The object's current `w` field.
        w: WTuple<V>,
    },
    /// `READk_ACK⟨tsr, history⟩`: regular-protocol reply (Figure 5 line 18).
    ReadAckRegular {
        /// Round being answered.
        round: ReadRound,
        /// Echo of the reader timestamp this ACK answers.
        tsr: u64,
        /// The object's history (full, or a suffix under §5.1).
        history: History<V>,
    },
}

impl<V: fmt::Debug> fmt::Debug for Msg<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Msg::Pw { ts, pw, .. } => write!(f, "PW⟨{ts:?},{pw:?}⟩"),
            Msg::PwAck { ts, .. } => write!(f, "PW_ACK⟨{ts:?}⟩"),
            Msg::W { ts, pw, .. } => write!(f, "W⟨{ts:?},{pw:?}⟩"),
            Msg::WAck { ts } => write!(f, "W_ACK⟨{ts:?}⟩"),
            Msg::Read {
                round,
                reader,
                tsr,
                since,
                ack,
            } => {
                write!(f, "READ{}⟨r{reader},tsr{tsr}", round.number())?;
                if let Some(s) = since {
                    write!(f, ",since {s:?}")?;
                }
                if *ack > Timestamp::ZERO {
                    write!(f, ",ack {ack:?}")?;
                }
                write!(f, "⟩")
            }
            Msg::ReadAckSafe { round, tsr, pw, w } => {
                write!(f, "READ{}_ACK⟨tsr{tsr},{pw:?},{w:?}⟩", round.number())
            }
            Msg::ReadAckRegular {
                round,
                tsr,
                history,
            } => {
                write!(
                    f,
                    "READ{}_ACK⟨tsr{tsr},|h|={}⟩",
                    round.number(),
                    history.len()
                )
            }
        }
    }
}

impl<V: Value> SimMessage for Msg<V> {
    fn wire_size(&self) -> usize {
        // 1 tag byte plus structural payload estimates.
        1 + match self {
            Msg::Pw { pw, w, .. } | Msg::W { pw, w, .. } => 8 + pw.wire_size() + w.wire_size(),
            Msg::PwAck { tsr, .. } => 8 + tsr.len() * 16,
            Msg::WAck { .. } => 8,
            Msg::Read { since, .. } => 8 + 8 + 8 + 8 + if since.is_some() { 8 } else { 0 },
            Msg::ReadAckSafe { pw, w, .. } => 8 + pw.wire_size() + w.wire_size(),
            Msg::ReadAckRegular { history, .. } => 8 + history.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{HistEntry, TsrMatrix};

    #[test]
    fn round_numbers() {
        assert_eq!(ReadRound::R1.number(), 1);
        assert_eq!(ReadRound::R2.number(), 2);
        assert!(ReadRound::R1 < ReadRound::R2);
    }

    #[test]
    fn regular_ack_size_grows_with_history() {
        let mut h: History<u64> = History::initial();
        let small = Msg::ReadAckRegular {
            round: ReadRound::R1,
            tsr: 1,
            history: h.clone(),
        }
        .wire_size();
        for k in 1..=50u64 {
            h.insert(
                Timestamp(k),
                HistEntry {
                    pw: TsVal::new(Timestamp(k), k),
                    w: None,
                },
            );
        }
        let big = Msg::ReadAckRegular {
            round: ReadRound::R1,
            tsr: 1,
            history: h,
        }
        .wire_size();
        assert!(
            big > small + 50 * 8,
            "history must dominate ack size: {small} -> {big}"
        );
    }

    #[test]
    fn safe_ack_size_is_bounded() {
        let w = WTuple::new(TsVal::new(Timestamp(3), 1u64), TsrMatrix::empty());
        let m = Msg::ReadAckSafe {
            round: ReadRound::R2,
            tsr: 4,
            pw: TsVal::new(Timestamp(3), 1u64),
            w,
        };
        assert!(m.wire_size() < 100);
    }

    #[test]
    fn debug_render_is_compact() {
        let m: Msg<u64> = Msg::Read {
            round: ReadRound::R1,
            reader: 2,
            tsr: 7,
            since: None,
            ack: Timestamp::ZERO,
        };
        assert_eq!(format!("{m:?}"), "READ1⟨r2,tsr7⟩");
        let m: Msg<u64> = Msg::Read {
            round: ReadRound::R2,
            reader: 0,
            tsr: 8,
            since: None,
            ack: Timestamp(5),
        };
        assert_eq!(format!("{m:?}"), "READ2⟨r0,tsr8,ack ts5⟩");
        let m: Msg<u64> = Msg::WAck { ts: Timestamp(4) };
        assert_eq!(format!("{m:?}"), "W_ACK⟨ts4⟩");
    }
}
