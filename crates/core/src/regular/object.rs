//! The regular-storage base object (Figure 5).
//!
//! Unlike the safe object, it "keeps track of all values received from the
//! writer throughout the entire run" (§5): a history map from write
//! timestamp to the `⟨pw, w⟩` recorded for that write. Read ACKs carry the
//! history — the whole map in the paper-faithful mode, or the suffix from
//! the reader's cached timestamp under the §5.1 optimization.

use std::collections::BTreeMap;

use vrr_sim::{Automaton, Context, ProcessId};

use crate::msg::Msg;
use crate::types::{HistEntry, History, Timestamp, Value};

/// Garbage-collection policy for object histories.
///
/// `KeepAll` is the paper's model (§5 explicitly accepts the storage-
/// exhaustion risk). `KeepLast(n)` is an *extension* for long-running
/// deployments: it bounds history length at the cost of occasionally
/// forcing the optimized reader onto its cached value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HistoryRetention {
    /// Keep every entry (paper-faithful).
    #[default]
    KeepAll,
    /// Keep only the `n` highest-timestamp entries (`n ≥ 1`).
    KeepLast(usize),
}

/// A correct base object of the regular protocol.
#[derive(Clone, Debug)]
pub struct RegularObject<V> {
    ts: Timestamp,
    history: History<V>,
    tsr: BTreeMap<usize, u64>,
    retention: HistoryRetention,
}

impl<V: Value> RegularObject<V> {
    /// A freshly initialized object (Figure 5 lines 1–3).
    pub fn new() -> Self {
        Self::with_retention(HistoryRetention::KeepAll)
    }

    /// An object with a history retention policy (extension; see
    /// [`HistoryRetention`]).
    ///
    /// # Panics
    ///
    /// Panics if the policy is `KeepLast(0)`.
    pub fn with_retention(retention: HistoryRetention) -> Self {
        if let HistoryRetention::KeepLast(n) = retention {
            assert!(n >= 1, "KeepLast must retain at least one entry");
        }
        RegularObject {
            ts: Timestamp::ZERO,
            history: History::initial(),
            tsr: BTreeMap::new(),
            retention,
        }
    }

    /// The current write timestamp.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The stored history.
    pub fn history(&self) -> &History<V> {
        &self.history
    }

    /// The stored timestamp of reader `j` (0 if never contacted).
    pub fn tsr(&self, j: usize) -> u64 {
        self.tsr.get(&j).copied().unwrap_or(0)
    }

    fn apply_retention(&mut self) {
        if let HistoryRetention::KeepLast(n) = self.retention {
            if self.history.len() > n {
                let keep_from = {
                    let mut keys: Vec<Timestamp> = self.history.iter().map(|(ts, _)| ts).collect();
                    keys.sort_unstable();
                    keys[keys.len() - n]
                };
                self.history.retain_from(keep_from);
            }
        }
    }
}

impl<V: Value> Default for RegularObject<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Value> Automaton<Msg<V>> for RegularObject<V> {
    fn on_message(&mut self, from: ProcessId, msg: Msg<V>, ctx: &mut Context<'_, Msg<V>>) {
        match msg {
            // Figure 5 lines 4–9 (with the §5 prose indexing: history[ts'],
            // history[ts'−1]; the figure's `history[ts]` is a typo — see
            // DESIGN.md).
            Msg::Pw { ts, pw, w } => {
                if ts > self.ts {
                    self.history.insert(ts, HistEntry { pw, w: None });
                    // The PW of write ts carries write (ts−1)'s tuple:
                    // objects that missed the previous W round backfill here.
                    self.history.insert(
                        ts.prev(),
                        HistEntry {
                            pw: w.tsval.clone(),
                            w: Some(w),
                        },
                    );
                    self.ts = ts;
                    self.apply_retention();
                    ctx.send(
                        from,
                        Msg::PwAck {
                            ts: self.ts,
                            tsr: self.tsr.clone(),
                        },
                    );
                }
            }
            // Figure 5 lines 10–14.
            Msg::W { ts, pw, w } => {
                if ts >= self.ts {
                    self.ts = ts;
                    self.history.insert(ts, HistEntry { pw, w: Some(w) });
                    self.apply_retention();
                    ctx.send(from, Msg::WAck { ts });
                }
            }
            // Figure 5 lines 15–19, plus the §5.1 suffix optimization.
            Msg::Read {
                round,
                reader,
                tsr,
                since,
            } => {
                if tsr > self.tsr(reader) {
                    self.tsr.insert(reader, tsr);
                    let history = match since {
                        Some(s) => self.history.suffix(s),
                        None => self.history.clone(),
                    };
                    ctx.send(
                        from,
                        Msg::ReadAckRegular {
                            round,
                            tsr,
                            history,
                        },
                    );
                }
            }
            Msg::PwAck { .. }
            | Msg::WAck { .. }
            | Msg::ReadAckSafe { .. }
            | Msg::ReadAckRegular { .. } => {}
        }
    }

    fn label(&self) -> &'static str {
        "regular-object"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ReadRound;
    use crate::types::{TsVal, TsrMatrix, WTuple};

    fn step(obj: &mut RegularObject<u64>, msg: Msg<u64>) -> Vec<(ProcessId, Msg<u64>)> {
        let mut out = Vec::new();
        let mut ctx = Context::new(ProcessId(0), &mut out);
        obj.on_message(ProcessId(9), msg, &mut ctx);
        out
    }

    fn tuple(ts: u64, v: u64) -> WTuple<u64> {
        WTuple::new(TsVal::new(Timestamp(ts), v), TsrMatrix::empty())
    }

    fn pw_msg(ts: u64, v: u64, prev: WTuple<u64>) -> Msg<u64> {
        Msg::Pw {
            ts: Timestamp(ts),
            pw: TsVal::new(Timestamp(ts), v),
            w: prev,
        }
    }

    fn w_msg(ts: u64, v: u64) -> Msg<u64> {
        Msg::W {
            ts: Timestamp(ts),
            pw: TsVal::new(Timestamp(ts), v),
            w: tuple(ts, v),
        }
    }

    #[test]
    fn initial_history_has_entry_zero() {
        let obj: RegularObject<u64> = RegularObject::new();
        assert_eq!(obj.history().len(), 1);
        assert!(obj.history().get(Timestamp::ZERO).is_some());
    }

    #[test]
    fn pw_records_current_and_backfills_previous() {
        let mut obj = RegularObject::new();
        // Object missed write 1 entirely; PW of write 2 carries w1.
        let out = step(&mut obj, pw_msg(2, 20, tuple(1, 10)));
        assert_eq!(out.len(), 1);
        assert_eq!(obj.ts(), Timestamp(2));
        let e2 = obj.history().get(Timestamp(2)).expect("entry 2");
        assert_eq!(e2.pw.value, Some(20));
        assert!(e2.w.is_none(), "write 2's W round not yet seen");
        let e1 = obj.history().get(Timestamp(1)).expect("backfilled entry 1");
        assert_eq!(e1.pw.value, Some(10));
        assert_eq!(e1.w.as_ref().map(|w| w.ts()), Some(Timestamp(1)));
    }

    #[test]
    fn w_completes_the_entry() {
        let mut obj = RegularObject::new();
        step(&mut obj, pw_msg(1, 10, WTuple::initial()));
        let out = step(&mut obj, w_msg(1, 10));
        assert_eq!(out.len(), 1);
        let e1 = obj.history().get(Timestamp(1)).expect("entry 1");
        assert!(e1.w.is_some());
    }

    #[test]
    fn stale_messages_do_not_ack_or_mutate() {
        let mut obj = RegularObject::new();
        step(&mut obj, pw_msg(3, 30, tuple(2, 20)));
        assert!(step(&mut obj, pw_msg(2, 99, tuple(1, 98))).is_empty());
        assert!(step(&mut obj, w_msg(2, 99)).is_empty());
        assert_eq!(obj.history().get(Timestamp(2)).unwrap().pw.value, Some(20));
    }

    #[test]
    fn read_returns_full_history_without_since() {
        let mut obj = RegularObject::new();
        step(&mut obj, pw_msg(1, 10, WTuple::initial()));
        step(&mut obj, w_msg(1, 10));
        let out = step(
            &mut obj,
            Msg::Read {
                round: ReadRound::R1,
                reader: 0,
                tsr: 1,
                since: None,
            },
        );
        match &out[..] {
            [(_, Msg::ReadAckRegular { history, .. })] => {
                assert_eq!(history.len(), 2, "entries 0 and 1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_with_since_returns_suffix() {
        let mut obj = RegularObject::new();
        for k in 1..=5u64 {
            step(&mut obj, pw_msg(k, k * 10, tuple(k - 1, (k - 1) * 10)));
            step(&mut obj, w_msg(k, k * 10));
        }
        let out = step(
            &mut obj,
            Msg::Read {
                round: ReadRound::R1,
                reader: 0,
                tsr: 1,
                since: Some(Timestamp(4)),
            },
        );
        match &out[..] {
            [(_, Msg::ReadAckRegular { history, .. })] => {
                assert_eq!(history.len(), 2, "entries 4 and 5 only");
                assert!(history.get(Timestamp(3)).is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_reader_timestamp_gets_no_reply() {
        let mut obj: RegularObject<u64> = RegularObject::new();
        step(
            &mut obj,
            Msg::Read {
                round: ReadRound::R1,
                reader: 0,
                tsr: 4,
                since: None,
            },
        );
        let out = step(
            &mut obj,
            Msg::Read {
                round: ReadRound::R1,
                reader: 0,
                tsr: 4,
                since: None,
            },
        );
        assert!(out.is_empty());
    }

    #[test]
    fn keep_last_bounds_history() {
        let mut obj = RegularObject::with_retention(HistoryRetention::KeepLast(3));
        for k in 1..=10u64 {
            step(&mut obj, pw_msg(k, k, tuple(k - 1, k - 1)));
            step(&mut obj, w_msg(k, k));
        }
        assert!(obj.history().len() <= 3);
        assert!(
            obj.history().get(Timestamp(10)).is_some(),
            "newest entry kept"
        );
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn keep_last_zero_rejected() {
        let _ = RegularObject::<u64>::with_retention(HistoryRetention::KeepLast(0));
    }
}
