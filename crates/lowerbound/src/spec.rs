//! The abstraction of a "fast READ" storage implementation that the
//! Figure-1 runs are executed against.
//!
//! Proposition 1 quantifies over *every* implementation in which every READ
//! completes in one communication round-trip. [`FastReadSpec`] captures what
//! the proof actually uses of such an implementation:
//!
//! * objects are deterministic automata with snapshotable state (`σ`);
//! * the writer runs an arbitrary protocol (*any* number of rounds) that
//!   can only exchange messages with reachable objects;
//! * a read is one message per object; an object's reply is a deterministic
//!   function of its state (and may update the state — the paper's model
//!   allows fast reads that write control data);
//! * the reader must decide from `S − t` replies (it cannot wait for more:
//!   the other `t` objects may have crashed).

use std::collections::BTreeMap;
use std::fmt;

use vrr_core::Value;

/// A fast-read storage implementation under test.
pub trait FastReadSpec {
    /// The value domain.
    type Value: Value;
    /// Object state (the paper's `σ`).
    type ObjState: Clone + fmt::Debug;
    /// A read reply (`readack` payload).
    type Reply: Clone + Eq + fmt::Debug;

    /// Total number of base objects this deployment uses.
    fn object_count(&self) -> usize;

    /// How many objects may fail (`t`).
    fn max_faulty(&self) -> usize;

    /// The initial state `σ0`.
    fn initial_state(&self) -> Self::ObjState;

    /// Runs the writer's full `WRITE(value)` protocol. Objects with
    /// `reachable[i] == false` receive nothing (their messages stay in
    /// transit); the others process every round. Returns `true` iff the
    /// write completes — wait-freedom demands completion whenever at least
    /// `S − t` objects are reachable.
    fn run_write(
        &self,
        value: Self::Value,
        states: &mut [Self::ObjState],
        reachable: &[bool],
    ) -> bool;

    /// Object `i` (in state `state`) processes the read message of the
    /// (single-round) READ and produces its reply. May mutate the state.
    fn read_reply(&self, i: usize, state: &mut Self::ObjState, reader_ts: u64) -> Self::Reply;

    /// The reader's decision given replies from `S − t` distinct objects.
    ///
    /// `Some(Some(v))` returns a written value, `Some(None)` returns `⊥`,
    /// and `None` means the reader refuses to decide — which disqualifies
    /// the implementation as *fast* (with the remaining `t` objects crashed
    /// it would block forever, violating wait-freedom).
    fn decide(&self, replies: &BTreeMap<usize, Self::Reply>) -> Option<Option<Self::Value>>;
}

/// The block partition of the object set used throughout Figure 1:
/// `T1`, `T2` of size `t` and `B1`, `B2` of size `b` (plus, in the control
/// configuration with `S = 2t + 2b + 1`, one extra correct object `E`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockPartition {
    /// Fault budget `t`.
    pub t: usize,
    /// Byzantine budget `b`.
    pub b: usize,
    /// Indexes of block `T1` (crash-prone, size `t`).
    pub t1: Vec<usize>,
    /// Indexes of block `T2` (crash-prone, size `t`).
    pub t2: Vec<usize>,
    /// Indexes of block `B1` (Byzantine-prone, size `b`).
    pub b1: Vec<usize>,
    /// Indexes of block `B2` (Byzantine-prone, size `b`).
    pub b2: Vec<usize>,
    /// Extra correct objects beyond `2t + 2b` (empty at the impossibility
    /// boundary; size ≥ 1 in the control configuration).
    pub extra: Vec<usize>,
}

impl BlockPartition {
    /// Partitions `s` objects into the Figure-1 blocks.
    ///
    /// # Panics
    ///
    /// Panics if `s < 2t + 2b` or `b == 0` or `t < b`.
    pub fn new(s: usize, t: usize, b: usize) -> Self {
        assert!(b > 0, "the construction needs b > 0");
        assert!(t >= b, "b <= t");
        assert!(
            s >= 2 * t + 2 * b,
            "partition needs at least 2t + 2b objects"
        );
        let mut idx = 0..s;
        let mut take = |n: usize| -> Vec<usize> { idx.by_ref().take(n).collect() };
        let t1 = take(t);
        let t2 = take(t);
        let b1 = take(b);
        let b2 = take(b);
        let extra: Vec<usize> = idx.collect();
        BlockPartition {
            t,
            b,
            t1,
            t2,
            b1,
            b2,
            extra,
        }
    }

    /// Total object count.
    pub fn s(&self) -> usize {
        2 * self.t + 2 * self.b + self.extra.len()
    }

    /// The read view of runs 3–5: `B1 ∪ B2 ∪ T1 ∪ extra` (the reader never
    /// hears from `T2`). Exactly `S − t` objects.
    pub fn read_view(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .b1
            .iter()
            .chain(&self.b2)
            .chain(&self.t1)
            .chain(&self.extra)
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// The write reach of run 2: everyone except `T1`. Exactly `S − t`
    /// objects.
    pub fn write_reach(&self) -> Vec<bool> {
        let mut reach = vec![true; self.s()];
        for &i in &self.t1 {
            reach[i] = false;
        }
        reach
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_at_boundary_has_no_extra() {
        let p = BlockPartition::new(6, 2, 1);
        assert_eq!(p.t1, vec![0, 1]);
        assert_eq!(p.t2, vec![2, 3]);
        assert_eq!(p.b1, vec![4]);
        assert_eq!(p.b2, vec![5]);
        assert!(p.extra.is_empty());
        assert_eq!(p.s(), 6);
    }

    #[test]
    fn control_partition_has_extra() {
        let p = BlockPartition::new(7, 2, 1);
        assert_eq!(p.extra, vec![6]);
        assert_eq!(p.s(), 7);
    }

    #[test]
    fn read_view_is_s_minus_t() {
        for (s, t, b) in [(4, 1, 1), (6, 2, 1), (8, 2, 2), (9, 2, 2)] {
            let p = BlockPartition::new(s, t, b);
            assert_eq!(p.read_view().len(), s - t, "S={s} t={t} b={b}");
            assert!(p.read_view().iter().all(|i| !p.t2.contains(i)));
        }
    }

    #[test]
    fn write_reach_excludes_exactly_t1() {
        let p = BlockPartition::new(6, 2, 1);
        let reach = p.write_reach();
        assert_eq!(reach.iter().filter(|r| !**r).count(), 2);
        assert!(!reach[0] && !reach[1]);
    }

    #[test]
    #[should_panic(expected = "at least 2t + 2b")]
    fn rejects_too_few_objects() {
        let _ = BlockPartition::new(5, 2, 1);
    }
}
