//! Deterministic key→cluster routing for the multi-cluster store.
//!
//! Two pieces, both deliberately boring:
//!
//! * [`stable_hash_64`] — a seeded FNV-1a/SplitMix hash over anything
//!   `Hash`. Unlike `std::collections::hash_map::RandomState`, the result
//!   is a pure function of `(seed, key)`: the same key routes to the same
//!   place across processes, replays and deployments, which is what lets
//!   clients route without asking anyone.
//! * [`RingTable`] — a fixed array of *ring slots*; a key hashes to slot
//!   `h % slots`, and each slot names the shard-cluster currently serving
//!   it. Slot entries are atomics, so the per-operation routing step is a
//!   hash plus one relaxed-cost atomic load — no lock, no shared map.
//!   Rebalancing moves whole slots between clusters (a handful of entries),
//!   never rewrites per-key state.
//!
//! The slot granularity bounds rebalance work: adding or removing a
//! cluster moves `O(slots / clusters)` slots, and every key's route is
//! derivable from the table alone.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A seeded, process-stable [`Hasher`]: FNV-1a over the written bytes with
/// a SplitMix64 finalizer to spread the low bits FNV leaves correlated.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher whose stream is a pure function of `seed` and the
    /// subsequently written bytes.
    pub fn with_seed(seed: u64) -> Self {
        StableHasher {
            state: FNV_OFFSET ^ seed,
        }
    }
}

impl Hasher for StableHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        // SplitMix64 finalizer: FNV-1a alone mixes the high bits poorly,
        // and `% slots` consumes exactly those low-entropy positions.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Hashes `key` under `seed`, deterministically across processes and
/// replays (never [`std::collections::hash_map::RandomState`]).
///
/// # Examples
///
/// ```
/// use vrr_runtime::stable_hash_64;
///
/// assert_eq!(stable_hash_64(7, &"alpha"), stable_hash_64(7, &"alpha"));
/// assert_ne!(stable_hash_64(7, &"alpha"), stable_hash_64(8, &"alpha"));
/// ```
pub fn stable_hash_64<K: Hash + ?Sized>(seed: u64, key: &K) -> u64 {
    let mut h = StableHasher::with_seed(seed);
    key.hash(&mut h);
    h.finish()
}

/// The routing table of a multi-cluster store: `slots` ring slots, each
/// naming the cluster index currently serving it.
///
/// Reads ([`RingTable::route`]) are lock-free; writes
/// ([`RingTable::assign`]) happen only during rebalances, under the
/// router's per-slot guards. The initial assignment deals slots round-robin
/// across the first `clusters` cluster indices.
#[derive(Debug)]
pub struct RingTable {
    seed: u64,
    slots: Vec<AtomicUsize>,
}

impl RingTable {
    /// A table of `slots` ring slots dealt round-robin over cluster
    /// indices `0..clusters`.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `clusters == 0`.
    pub fn new(seed: u64, slots: usize, clusters: usize) -> Self {
        assert!(slots > 0, "a ring needs at least one slot");
        assert!(clusters > 0, "a ring needs at least one cluster");
        RingTable {
            seed,
            slots: (0..slots).map(|s| AtomicUsize::new(s % clusters)).collect(),
        }
    }

    /// The routing seed (stable for the table's lifetime).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of ring slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The ring slot `key` hashes to.
    pub fn slot_of<K: Hash + ?Sized>(&self, key: &K) -> usize {
        (stable_hash_64(self.seed, key) % self.slots.len() as u64) as usize
    }

    /// The cluster currently serving ring slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn cluster_of_slot(&self, slot: usize) -> usize {
        self.slots[slot].load(Ordering::Acquire)
    }

    /// Routes `key`: `(slot, cluster)`. Lock-free.
    pub fn route<K: Hash + ?Sized>(&self, key: &K) -> (usize, usize) {
        let slot = self.slot_of(key);
        (slot, self.cluster_of_slot(slot))
    }

    /// Points ring slot `slot` at `cluster`. Called only by rebalances,
    /// after the keys of the slot were copied over.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn assign(&self, slot: usize, cluster: usize) {
        self.slots[slot].store(cluster, Ordering::Release);
    }

    /// The ring slots currently served by `cluster`, ascending.
    pub fn slots_of(&self, cluster: usize) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&s| self.cluster_of_slot(s) == cluster)
            .collect()
    }

    /// How many ring slots each cluster index in `0..clusters` serves.
    pub fn slot_counts(&self, clusters: usize) -> Vec<usize> {
        let mut counts = vec![0usize; clusters];
        for slot in &self.slots {
            let c = slot.load(Ordering::Acquire);
            if c < clusters {
                counts[c] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_seed_sensitive() {
        for key in ["", "a", "key-17", "the quick brown fox"] {
            assert_eq!(stable_hash_64(1, key), stable_hash_64(1, key));
        }
        assert_ne!(stable_hash_64(1, "key"), stable_hash_64(2, "key"));
        assert_ne!(stable_hash_64(1, "key-1"), stable_hash_64(1, "key-2"));
    }

    #[test]
    fn ring_routes_deterministically() {
        let a = RingTable::new(42, 64, 3);
        let b = RingTable::new(42, 64, 3);
        for k in 0..500u64 {
            assert_eq!(a.route(&k), b.route(&k));
        }
    }

    #[test]
    fn initial_assignment_is_even() {
        let ring = RingTable::new(7, 64, 3);
        let counts = ring.slot_counts(3);
        assert_eq!(counts.iter().sum::<usize>(), 64);
        assert!(counts.iter().all(|&c| (21..=22).contains(&c)), "{counts:?}");
    }

    #[test]
    fn sequential_keys_spread_across_slots() {
        // The adversarial-but-realistic case: dense sequential keys must
        // not clump (this is what the SplitMix finalizer buys).
        let ring = RingTable::new(9, 32, 4);
        let mut counts = vec![0usize; 4];
        for k in 0..1000u64 {
            counts[ring.route(&format!("user-{k}")).1] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= 2 * min.max(1), "skewed routing: {counts:?}");
    }

    #[test]
    fn assign_moves_a_slot() {
        let ring = RingTable::new(3, 8, 2);
        let slot = ring.slot_of(&"k");
        let before = ring.cluster_of_slot(slot);
        ring.assign(slot, 5);
        assert_eq!(ring.cluster_of_slot(slot), 5);
        assert_ne!(before, 5);
        assert!(ring.slots_of(5).contains(&slot));
    }
}
