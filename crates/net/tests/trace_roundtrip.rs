//! Differential trace round-trip: the same seeded workload replayed
//! in-process (threads + channels) and over real sockets must yield
//! *byte-identical* checker inputs and verdicts — the `Debug` renderings
//! of the two `OpHistory`s and `CheckResult`s are compared as strings.
//!
//! Also probes raw trace serialization: a protocol [`History`] shipped to
//! a server and echoed back must come home structurally equal.

use std::collections::BTreeMap;

use vrr_checker::{check_regularity, OpHistory};
use vrr_core::{HistEntry, History, StorageConfig, Timestamp, TsVal, TsrMatrix, WTuple};
use vrr_net::{free_addrs, GroupPlacement, NetClient, NetNode, NetNodeConfig, NodeTopology};
use vrr_runtime::{NoDelay, ProtocolKind, StorageCluster};

/// SplitMix64 — one shared schedule for both executions.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// One schedule step: `Write` bumps the sequence, `Read(j)` reads at
/// reader `j`.
#[derive(Clone, Copy)]
enum Step {
    Write,
    Read(usize),
}

fn schedule(seed: u64, len: usize, readers: usize) -> Vec<Step> {
    let mut g = Gen(seed);
    let mut steps = vec![Step::Write]; // seed the register before reads
    while steps.len() < len {
        steps.push(if g.next().is_multiple_of(2) {
            Step::Write
        } else {
            Step::Read(g.next() as usize % readers)
        });
    }
    steps
}

/// Replays `steps` through `write`/`read` closures, recording with
/// logical timestamps `2i`/`2i + 1` so both executions stamp identically
/// regardless of wall-clock speed. Written value = write seq, so the read
/// value *is* the observed write's seq.
fn replay<W, R>(steps: &[Step], mut write: W, mut read: R) -> OpHistory<u64>
where
    W: FnMut(u64),
    R: FnMut(usize) -> Option<u64>,
{
    let mut history = OpHistory::new();
    let mut seq = 0u64;
    for (i, step) in steps.iter().enumerate() {
        let (invoked, completed) = (2 * i as u64, 2 * i as u64 + 1);
        match *step {
            Step::Write => {
                seq += 1;
                write(seq);
                history.push_write(seq, seq, invoked, Some(completed));
            }
            Step::Read(j) => {
                let value = read(j);
                history.push_read(j, value.unwrap_or(0), value, invoked, Some(completed));
            }
        }
    }
    history
}

/// The differential: in-proc channels vs localhost sockets, same seed,
/// same logical clock — identical `Debug` bytes out of the checker layer.
#[test]
fn tcp_and_inproc_traces_are_byte_identical() {
    let cfg = StorageConfig::optimal(1, 1, 2);
    let steps = schedule(0x7_2ACE, 40, cfg.readers);

    // Execution A: threads and channels.
    let storage: StorageCluster<u64> =
        StorageCluster::deploy(cfg, ProtocolKind::RegularOptimized, Box::new(NoDelay));
    let inproc = replay(
        &steps,
        |v| {
            storage.write(v);
        },
        |j| storage.read(j).value,
    );

    // Execution B: the same group split across two NetNodes, every
    // writer→object and reader→object message crossing real sockets.
    let topo = NodeTopology {
        addrs: free_addrs(2).expect("reserve ports"),
        placement: GroupPlacement {
            objects: (0..cfg.s).map(|i| u32::from(i % 2 == 1)).collect(),
            writer: 0,
            readers: (0..cfg.readers).map(|j| u32::from(j % 2 == 1)).collect(),
        },
        slots: 1,
    };
    let ncfg = NetNodeConfig::<u64>::new(cfg, ProtocolKind::RegularOptimized);
    let n0 = NetNode::start(0, &topo, ncfg.clone()).expect("node 0");
    let n1 = NetNode::start(1, &topo, ncfg).expect("node 1");
    let tcp = replay(
        &steps,
        |v| {
            n0.write_slot(0, v);
        },
        |j| {
            let node = if j % 2 == 1 { &n1 } else { &n0 };
            node.read_slot(0, j).value
        },
    );

    // Same schedule, same logical clock, fault-free: the recorded
    // histories must agree byte for byte, and so must the verdicts.
    assert_eq!(format!("{inproc:?}"), format!("{tcp:?}"));
    let (a, b) = (check_regularity(&inproc), check_regularity(&tcp));
    assert!(a.is_ok(), "in-proc run not regular: {a:?}");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// Raw protocol state across the wire: a non-trivial `History` echoed
/// through a server survives both directions of the codec.
#[test]
fn history_echoed_through_server_is_equal() {
    let cfg = StorageConfig::optimal(1, 0, 1);
    let topo = NodeTopology {
        addrs: free_addrs(1).expect("reserve port"),
        placement: GroupPlacement::single(0, cfg),
        slots: 1,
    };
    let node = NetNode::start(
        0,
        &topo,
        NetNodeConfig::<u64>::new(cfg, ProtocolKind::Regular),
    )
    .expect("start node");

    let mut history = History::initial();
    let mut g = Gen(0xEC40);
    for k in 1..=50u64 {
        let mut matrix = TsrMatrix::empty();
        for i in 0..3usize {
            let row: BTreeMap<usize, u64> = (0..3).map(|j| (j, g.next())).collect();
            matrix.set_row(i, row);
        }
        history.insert(
            Timestamp(k * 7),
            HistEntry {
                pw: TsVal::new(Timestamp(k * 7), g.next()),
                w: if k.is_multiple_of(3) {
                    None
                } else {
                    Some(WTuple::new(TsVal::new(Timestamp(k * 7), g.next()), matrix))
                },
            },
        );
    }

    let mut client = NetClient::<u64>::connect(node.addr()).expect("connect");
    let echoed = client.echo_history(history.clone()).expect("echo");
    assert_eq!(echoed, history);
    assert_eq!(format!("{echoed:?}"), format!("{history:?}"));
}
