//! Core data types of the storage protocols.
//!
//! Nomenclature follows the paper: `pw` fields hold timestamp–value pairs
//! ([`TsVal`]), `w` fields hold pairs of a timestamp–value pair and an array
//! of reader-timestamp arrays ([`WTuple`] wrapping a [`TsrMatrix`]).

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

/// Values storable in the register.
///
/// The register is single-writer multi-reader over opaque unauthenticated
/// data; any equality-comparable owned type works. `wire_size` feeds the
/// bandwidth accounting of the §5.1 experiments.
pub trait Value: Clone + Eq + Ord + Hash + fmt::Debug + Send + 'static {
    /// Estimated serialized size of this value in bytes.
    fn wire_size(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

impl Value for u64 {}
impl Value for u32 {}
impl Value for i64 {}
impl Value for bool {}
impl Value for () {}

impl Value for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl Value for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

/// A write timestamp. The writer issues `1, 2, 3, …`; `0` is the initial
/// timestamp of the special value `⊥`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp of the initial value `⊥`.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The next timestamp (the paper's `inc(ts)`).
    #[must_use]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// The previous timestamp, saturating at zero.
    #[must_use]
    pub fn prev(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// A timestamp–value pair `⟨ts, v⟩` (the content of `pw` fields).
///
/// `value == None` encodes the paper's initial value `⊥`, which "is not a
/// valid input value for a WRITE" (§2.2).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TsVal<V> {
    /// The write timestamp.
    pub ts: Timestamp,
    /// The written value, or `None` for `⊥`.
    pub value: Option<V>,
}

impl<V: Value> TsVal<V> {
    /// The initial pair `⟨0, ⊥⟩` (the paper's `pw0`).
    pub fn bottom() -> Self {
        TsVal {
            ts: Timestamp::ZERO,
            value: None,
        }
    }

    /// A written pair `⟨ts, v⟩`.
    pub fn new(ts: Timestamp, value: V) -> Self {
        TsVal {
            ts,
            value: Some(value),
        }
    }

    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self.value.as_ref().map_or(0, Value::wire_size)
    }
}

impl<V: fmt::Debug> fmt::Debug for TsVal<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Some(v) => write!(f, "⟨{:?},{v:?}⟩", self.ts.0),
            None => write!(f, "⟨{:?},⊥⟩", self.ts.0),
        }
    }
}

/// Identifies a reader: the index `j` in the paper's `tsr[j]` fields.
pub type ReaderIndex = usize;

/// Identifies a base object: the index `i` in the paper's `s_i`.
pub type ObjectIndex = usize;

/// The array of arrays of reader timestamps the writer collects during its
/// `PW` round (the paper's `tsrarray[1..S][1..R]`).
///
/// `get(i, j)` is object `s_i`'s last-known timestamp of reader `r_j` as
/// reported to the writer; an absent outer entry is the paper's `nil` (the
/// object did not ack the `PW` round), and an absent inner entry means the
/// object had not heard from that reader (equivalent to timestamp `0`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TsrMatrix {
    entries: BTreeMap<ObjectIndex, BTreeMap<ReaderIndex, u64>>,
}

impl TsrMatrix {
    /// The all-`nil` matrix (the paper's `inittsrarray`).
    pub fn empty() -> Self {
        TsrMatrix::default()
    }

    /// Records object `i`'s reader-timestamp vector.
    pub fn set_row(&mut self, i: ObjectIndex, row: BTreeMap<ReaderIndex, u64>) {
        self.entries.insert(i, row);
    }

    /// `tsrarray[i][j]`, or `None` if object `i` never acked (`nil`).
    ///
    /// An acked object with no entry for `j` reads as `Some(0)`: the object
    /// had initialized `tsr[j] := 0`.
    pub fn get(&self, i: ObjectIndex, j: ReaderIndex) -> Option<u64> {
        self.entries
            .get(&i)
            .map(|row| row.get(&j).copied().unwrap_or(0))
    }

    /// Object indexes with non-`nil` rows.
    pub fn acked_objects(&self) -> impl Iterator<Item = ObjectIndex> + '_ {
        self.entries.keys().copied()
    }

    /// All non-`nil` rows in object order (used by the wire codec).
    pub fn rows(&self) -> impl Iterator<Item = (ObjectIndex, &BTreeMap<ReaderIndex, u64>)> {
        self.entries.iter().map(|(i, row)| (*i, row))
    }

    /// Number of non-`nil` rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no object acked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.entries.values().map(|row| 8 + row.len() * 16).sum()
    }
}

impl fmt::Debug for TsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.entries.iter()).finish()
    }
}

/// The tuple stored in `w` fields: `⟨tsval, tsrarray⟩`.
///
/// This is the unit the reader's candidate set `C` ranges over; two tuples
/// with the same `tsval` but different matrices are distinct candidates
/// (a fact Byzantine objects can exploit, and which the `conflict` predicate
/// defends against).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WTuple<V> {
    /// The timestamp–value pair of the write that produced this tuple.
    pub tsval: TsVal<V>,
    /// The reader timestamps collected in that write's `PW` round.
    pub tsrarray: TsrMatrix,
}

impl<V: Value> WTuple<V> {
    /// The initial tuple `w0 = ⟨⟨0,⊥⟩, inittsrarray⟩`.
    pub fn initial() -> Self {
        WTuple {
            tsval: TsVal::bottom(),
            tsrarray: TsrMatrix::empty(),
        }
    }

    /// A tuple for a written pair.
    pub fn new(tsval: TsVal<V>, tsrarray: TsrMatrix) -> Self {
        WTuple { tsval, tsrarray }
    }

    /// The write timestamp of this tuple.
    pub fn ts(&self) -> Timestamp {
        self.tsval.ts
    }

    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.tsval.wire_size() + self.tsrarray.wire_size()
    }
}

impl<V: fmt::Debug> fmt::Debug for WTuple<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:?}", self.tsval)
    }
}

/// One entry of a regular-storage object's history: the `⟨pw, w⟩` recorded
/// for a given write timestamp (Figure 5).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct HistEntry<V> {
    /// The `pw` component (always known once the entry exists).
    pub pw: TsVal<V>,
    /// The `w` component; `None` is the paper's `nil` (only the `PW` round
    /// of this write has been seen so far).
    pub w: Option<WTuple<V>>,
}

impl<V: Value> HistEntry<V> {
    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.pw.wire_size() + self.w.as_ref().map_or(1, |w| 1 + w.wire_size())
    }
}

impl<V: fmt::Debug> fmt::Debug for HistEntry<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{:?})", self.pw, self.w)
    }
}

/// A regular-storage object's history: write timestamp → [`HistEntry`].
///
/// The unoptimized protocol ships the whole map in every `READk_ACK`; the
/// §5.1 optimization ships the suffix from the reader's cached timestamp.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct History<V> {
    entries: BTreeMap<Timestamp, HistEntry<V>>,
}

impl<V> History<V> {
    /// An empty history (used for suffix extraction).
    pub fn empty() -> Self {
        History {
            entries: BTreeMap::new(),
        }
    }

    /// The entry at `ts`, or `None` ("no entry", which readers must treat
    /// as `⟨nil, nil⟩`, Figure 6).
    pub fn get(&self, ts: Timestamp) -> Option<&HistEntry<V>> {
        self.entries.get(&ts)
    }

    /// Inserts or replaces the entry at `ts`.
    pub fn insert(&mut self, ts: Timestamp, entry: HistEntry<V>) {
        self.entries.insert(ts, entry);
    }

    /// All entries in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, &HistEntry<V>)> {
        self.entries.iter().map(|(ts, e)| (*ts, e))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the history holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The highest timestamp with an entry.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.entries.keys().next_back().copied()
    }
}

impl<V: Value> History<V> {
    /// The initial history: `history[0] = ⟨pw0, ⟨pw0, inittsrarray⟩⟩`.
    pub fn initial() -> Self {
        let mut entries = BTreeMap::new();
        entries.insert(
            Timestamp::ZERO,
            HistEntry {
                pw: TsVal::bottom(),
                w: Some(WTuple::initial()),
            },
        );
        History { entries }
    }

    /// The sub-history from `since` (inclusive) onwards — the §5.1
    /// optimization's reply payload.
    pub fn suffix(&self, since: Timestamp) -> History<V> {
        History {
            entries: self
                .entries
                .range(since..)
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
        }
    }

    /// Drops every entry strictly below `below`, keeping at least the
    /// highest entry. An *extension* over the paper (garbage collection for
    /// the storage-exhaustion caveat of §1); never enabled in the
    /// paper-faithful configuration.
    pub fn retain_from(&mut self, below: Timestamp) {
        if let Some(max) = self.max_ts() {
            let cut = below.min(max);
            self.entries.retain(|ts, _| *ts >= cut);
        }
    }

    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> usize {
        self.entries.values().map(|e| 8 + e.wire_size()).sum()
    }
}

impl<V: fmt::Debug> fmt::Debug for History<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.entries.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_next_prev() {
        assert_eq!(Timestamp::ZERO.next(), Timestamp(1));
        assert_eq!(Timestamp(5).prev(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.prev(), Timestamp::ZERO);
    }

    #[test]
    fn tsval_bottom_is_minimal() {
        let bot: TsVal<u64> = TsVal::bottom();
        assert_eq!(bot.ts, Timestamp::ZERO);
        assert!(bot.value.is_none());
        assert!(bot < TsVal::new(Timestamp(1), 0u64));
    }

    #[test]
    fn tsval_wire_size_counts_value() {
        assert_eq!(TsVal::<u64>::bottom().wire_size(), 8);
        assert_eq!(TsVal::new(Timestamp(1), 7u64).wire_size(), 16);
        assert_eq!(TsVal::new(Timestamp(1), vec![0u8; 100]).wire_size(), 108);
    }

    #[test]
    fn tsr_matrix_nil_vs_zero() {
        let mut m = TsrMatrix::empty();
        assert_eq!(m.get(0, 0), None); // nil: object never acked
        m.set_row(0, BTreeMap::from([(1, 5)]));
        assert_eq!(m.get(0, 1), Some(5));
        assert_eq!(m.get(0, 0), Some(0)); // acked object, unknown reader -> 0
        assert_eq!(m.get(3, 0), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tsr_matrix_equality_is_structural() {
        let mut a = TsrMatrix::empty();
        let mut b = TsrMatrix::empty();
        a.set_row(2, BTreeMap::from([(0, 1)]));
        b.set_row(2, BTreeMap::from([(0, 1)]));
        assert_eq!(a, b);
        b.set_row(3, BTreeMap::new());
        assert_ne!(a, b);
    }

    #[test]
    fn wtuple_initial_matches_paper_w0() {
        let w0: WTuple<u64> = WTuple::initial();
        assert_eq!(w0.ts(), Timestamp::ZERO);
        assert!(w0.tsval.value.is_none());
        assert!(w0.tsrarray.is_empty());
    }

    #[test]
    fn distinct_matrices_make_distinct_tuples() {
        let tsval = TsVal::new(Timestamp(1), 9u64);
        let a = WTuple::new(tsval.clone(), TsrMatrix::empty());
        let mut m = TsrMatrix::empty();
        m.set_row(0, BTreeMap::from([(0, 3)]));
        let b = WTuple::new(tsval, m);
        assert_ne!(
            a, b,
            "same tsval, different matrix must be distinct candidates"
        );
    }

    #[test]
    fn history_initial_has_ts0() {
        let h: History<u64> = History::initial();
        assert_eq!(h.len(), 1);
        let e = h.get(Timestamp::ZERO).expect("initial entry");
        assert_eq!(e.pw, TsVal::bottom());
        assert_eq!(e.w.as_ref().map(WTuple::ts), Some(Timestamp::ZERO));
    }

    #[test]
    fn history_suffix_is_inclusive() {
        let mut h: History<u64> = History::initial();
        for k in 1..=5u64 {
            h.insert(
                Timestamp(k),
                HistEntry {
                    pw: TsVal::new(Timestamp(k), k),
                    w: None,
                },
            );
        }
        let suf = h.suffix(Timestamp(3));
        assert_eq!(suf.len(), 3);
        assert!(suf.get(Timestamp(2)).is_none());
        assert!(suf.get(Timestamp(3)).is_some());
        assert_eq!(suf.max_ts(), Some(Timestamp(5)));
    }

    #[test]
    fn history_retain_keeps_top_entry() {
        let mut h: History<u64> = History::initial();
        for k in 1..=5u64 {
            h.insert(
                Timestamp(k),
                HistEntry {
                    pw: TsVal::new(Timestamp(k), k),
                    w: None,
                },
            );
        }
        h.retain_from(Timestamp(100)); // beyond max: keeps the max entry only
        assert_eq!(h.len(), 1);
        assert!(h.get(Timestamp(5)).is_some());
    }

    #[test]
    fn history_wire_size_grows_with_entries() {
        let mut h: History<u64> = History::initial();
        let small = h.wire_size();
        for k in 1..=10u64 {
            h.insert(
                Timestamp(k),
                HistEntry {
                    pw: TsVal::new(Timestamp(k), k),
                    w: None,
                },
            );
        }
        assert!(h.wire_size() > small);
    }
}
