//! The atomicity checker.
//!
//! Atomic (linearizable) register semantics "provide the illusion of
//! instantaneous access" (§1). For a SWMR register, Lamport's
//! characterization applies: a history is atomic iff it is regular and has
//! no *new/old inversion* — whenever read `r1` precedes read `r2`, `r2`
//! returns a write at least as new as `r1`'s.
//!
//! The paper's protocols are deliberately *not* atomic (regular is the
//! target); this checker exists to demonstrate that gap experimentally and
//! to support the atomic baselines.

use std::fmt;

use crate::history::{OpHistory, OpKind};
use crate::regularity::check_regularity;
use crate::report::{CheckResult, Collector, ViolationKind};

/// Checks atomicity (SWMR linearizability) against a history.
///
/// # Errors
///
/// Returns regularity violations plus any new/old inversion between
/// non-concurrent reads (including across different readers).
pub fn check_atomicity<V: Clone + Eq + fmt::Debug>(history: &OpHistory<V>) -> CheckResult {
    let mut out = Collector::new();
    let regular = check_regularity(history);
    if let Err(violations) = regular {
        for v in violations {
            out.push(v.kind, v.detail);
        }
    }

    let reads = history.complete_reads();
    for (i, r1) in reads.iter().enumerate() {
        for (jdx, r2) in reads.iter().enumerate() {
            if i == jdx || !r1.precedes(r2) {
                continue;
            }
            let OpKind::Read {
                seq: s1,
                reader: rd1,
                ..
            } = &r1.kind
            else {
                unreachable!()
            };
            let OpKind::Read {
                seq: s2,
                reader: rd2,
                ..
            } = &r2.kind
            else {
                unreachable!()
            };
            if s2 < s1 {
                out.push(
                    ViolationKind::AtomicityInversion,
                    format!(
                        "read #{i} by r{rd1} returned seq {s1}, but the later read \
                         #{jdx} by r{rd2} returned older seq {s2}"
                    ),
                );
            }
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_in_order_pass() {
        let mut h = OpHistory::new();
        h.push_write(1, 10u64, 0, Some(5));
        h.push_write(2, 20, 10, Some(15));
        h.push_read(0, 1, Some(10), 6, Some(8));
        h.push_read(0, 2, Some(20), 16, Some(18));
        assert!(check_atomicity(&h).is_ok());
    }

    #[test]
    fn new_old_inversion_across_readers_is_flagged() {
        let mut h = OpHistory::new();
        h.push_write(1, 10u64, 0, Some(5));
        h.push_write(2, 20, 10, Some(30));
        // Both reads are concurrent with write 2 (regular allows either
        // value), but r0's read precedes r1's and sees the NEWER value:
        // the later read going back to write 1 is an inversion.
        h.push_read(0, 2, Some(20), 12, Some(14));
        h.push_read(1, 1, Some(10), 16, Some(18));
        assert!(check_regularity(&h).is_ok(), "regular but not atomic");
        let err = check_atomicity(&h).unwrap_err();
        assert_eq!(err[0].kind, ViolationKind::AtomicityInversion);
    }

    #[test]
    fn concurrent_reads_may_disagree() {
        let mut h = OpHistory::new();
        h.push_write(1, 10u64, 0, Some(5));
        h.push_write(2, 20, 10, Some(30));
        // Overlapping reads: no precedence, no inversion.
        h.push_read(0, 2, Some(20), 12, Some(20));
        h.push_read(1, 1, Some(10), 14, Some(22));
        assert!(check_atomicity(&h).is_ok());
    }

    #[test]
    fn regularity_violations_propagate() {
        let mut h = OpHistory::new();
        h.push_write(1, 10u64, 0, Some(5));
        h.push_read(0, 7, Some(777), 6, Some(8));
        let err = check_atomicity(&h).unwrap_err();
        assert!(err
            .iter()
            .any(|v| v.kind == ViolationKind::RegularityPhantomValue));
    }

    #[test]
    fn same_reader_inversion_is_flagged() {
        let mut h = OpHistory::new();
        h.push_write(1, 10u64, 0, Some(5));
        h.push_write(2, 20, 10, Some(40));
        h.push_read(0, 2, Some(20), 12, Some(14));
        h.push_read(0, 1, Some(10), 16, Some(18));
        let err = check_atomicity(&h).unwrap_err();
        assert!(err
            .iter()
            .any(|v| v.kind == ViolationKind::AtomicityInversion));
    }
}
