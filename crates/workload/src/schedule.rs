//! Operation schedules: who invokes what, when.
//!
//! Schedules are *intents*: a client invokes its next operation at the
//! planned time or as soon as its previous operation completes (clients are
//! well-formed, §2.2). Deterministic per seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vrr_sim::SimTime;

/// One planned operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannedOp {
    /// The writer writes the given value.
    Write {
        /// The value to write (derived from the write's sequence number so
        /// checkers can cross-validate).
        value: u64,
    },
    /// Reader `reader` performs a READ.
    Read {
        /// The reader index.
        reader: usize,
    },
}

/// A client's worth of planned operations with target invocation times.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClientPlan {
    /// `(not-before time, op)` pairs in program order.
    pub ops: Vec<(SimTime, PlannedOp)>,
}

/// A full schedule: one plan for the writer and one per reader.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schedule {
    /// The writer's plan (only `Write` ops).
    pub writer: ClientPlan,
    /// Reader plans, indexed by reader (only `Read` ops).
    pub readers: Vec<ClientPlan>,
}

impl Schedule {
    /// Total number of planned operations.
    pub fn len(&self) -> usize {
        self.writer.ops.len() + self.readers.iter().map(|r| r.ops.len()).sum::<usize>()
    }

    /// Whether the schedule plans nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The conventional value written by write number `seq` (1-based):
    /// `seq * 10`. Keeping values derivable lets checkers validate
    /// seq/value consistency.
    pub fn value_of_write(seq: u64) -> u64 {
        seq * 10
    }
}

/// Parameters for random schedule generation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScheduleParams {
    /// Number of writes.
    pub writes: u64,
    /// Number of reads per reader.
    pub reads_per_reader: u64,
    /// Number of readers.
    pub readers: usize,
    /// Mean gap between consecutive target invocation times of one client,
    /// in ticks. Small gaps produce heavy read/write concurrency.
    pub mean_gap: u64,
    /// RNG seed.
    pub seed: u64,
}

impl ScheduleParams {
    /// A light sequential workload: operations rarely overlap.
    pub fn sequential(writes: u64, reads_per_reader: u64, readers: usize, seed: u64) -> Self {
        ScheduleParams {
            writes,
            reads_per_reader,
            readers,
            mean_gap: 200,
            seed,
        }
    }

    /// A contended workload: reads race writes constantly.
    pub fn contended(writes: u64, reads_per_reader: u64, readers: usize, seed: u64) -> Self {
        ScheduleParams {
            writes,
            reads_per_reader,
            readers,
            mean_gap: 5,
            seed,
        }
    }
}

/// Generates a deterministic random schedule.
///
/// # Panics
///
/// Panics if `readers == 0`.
pub fn generate(params: ScheduleParams) -> Schedule {
    assert!(params.readers > 0, "need at least one reader");
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xC0FFEE);
    let gap = params.mean_gap.max(1);

    let mut writer = ClientPlan::default();
    let mut at = SimTime::ZERO;
    for seq in 1..=params.writes {
        at += rng.gen_range(1..=2 * gap);
        writer.ops.push((
            at,
            PlannedOp::Write {
                value: Schedule::value_of_write(seq),
            },
        ));
    }

    let readers = (0..params.readers)
        .map(|reader| {
            let mut plan = ClientPlan::default();
            let mut at = SimTime::ZERO;
            for _ in 0..params.reads_per_reader {
                at += rng.gen_range(1..=2 * gap);
                plan.ops.push((at, PlannedOp::Read { reader }));
            }
            plan
        })
        .collect();

    Schedule { writer, readers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = ScheduleParams::contended(5, 5, 2, 99);
        let a = generate(p);
        let b = generate(p);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.len(), 5 + 2 * 5);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(ScheduleParams::contended(5, 5, 2, 1));
        let b = generate(ScheduleParams::contended(5, 5, 2, 2));
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn client_times_are_monotone() {
        let s = generate(ScheduleParams::sequential(10, 10, 3, 7));
        let monotone = |plan: &ClientPlan| plan.ops.windows(2).all(|w| w[0].0 < w[1].0);
        assert!(monotone(&s.writer));
        assert!(s.readers.iter().all(monotone));
    }

    #[test]
    fn write_values_follow_convention() {
        let s = generate(ScheduleParams::sequential(3, 0, 1, 7));
        let values: Vec<u64> = s
            .writer
            .ops
            .iter()
            .map(|(_, op)| match op {
                PlannedOp::Write { value } => *value,
                PlannedOp::Read { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![10, 20, 30]);
    }
}
