//! Transport fault-injection battery over real sockets.
//!
//! Three fault classes, each with the same acceptance bar: every read
//! that *completes* must be regular per `vrr-checker`, and the deployment
//! must never hang or panic.
//!
//! 1. Byzantine base objects behind TCP — all six [`AttackerKind`]s over
//!    a two-node deployment (mirrors `tests/fast_path.rs`, but the honest
//!    and hostile objects talk over localhost sockets, not channels).
//! 2. A `vrr-server` OS process killed mid-read and restarted amnesiac
//!    with a fresh epoch.
//! 3. Connection resets injected between read rounds while reads are in
//!    flight.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vrr_checker::{check_regularity, OpHistory};
use vrr_core::attackers::AttackerKind;
use vrr_core::StorageConfig;
use vrr_net::{
    free_addrs, ByzSpec, GroupPlacement, NetClient, NetNode, NetNodeConfig, NodeTopology,
};
use vrr_runtime::ProtocolKind;

/// SplitMix64 workload scheduler.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Shared logical clock: each `invoked_at`/`completed_at` is one tick.
#[derive(Clone, Default)]
struct Clock(Arc<AtomicU64>);

impl Clock {
    fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

/// Writes value `seq` at write `seq`, so a read's returned value *is* the
/// sequence number of the write it observed (`None` ⇒ the initial `⊥`,
/// seq 0).
struct Recorder {
    history: OpHistory<u64>,
    next_seq: u64,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            history: OpHistory::new(),
            next_seq: 1,
        }
    }

    fn write<F: FnOnce(u64)>(&mut self, clock: &Clock, go: F) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let invoked = clock.tick();
        go(seq);
        let completed = clock.tick();
        self.history.push_write(seq, seq, invoked, Some(completed));
        seq
    }

    fn read<F: FnOnce() -> Option<u64>>(&mut self, reader: usize, clock: &Clock, go: F) {
        let invoked = clock.tick();
        let value = go();
        let completed = clock.tick();
        self.history
            .push_read(reader, value.unwrap_or(0), value, invoked, Some(completed));
    }
}

/// Two in-process `NetNode`s (so messages cross real sockets) hosting one
/// register group split across them: writer + first ⌈s/2⌉ objects on node
/// 0, the rest plus the reader on node 1.
fn two_node_topology(cfg: StorageConfig) -> NodeTopology {
    let split = cfg.s.div_ceil(2);
    NodeTopology {
        addrs: free_addrs(2).expect("reserve ports"),
        placement: GroupPlacement {
            objects: (0..cfg.s).map(|i| u32::from(i >= split)).collect(),
            writer: 0,
            readers: vec![1; cfg.readers],
        },
        slots: 1,
    }
}

/// Fault class 1: every attacker kind, behind TCP. The Byzantine object
/// lives on node 1 (remote from the writer) so its forgeries cross the
/// wire like any honest ack.
#[test]
fn byzantine_objects_over_tcp_stay_regular() {
    for (i, kind) in AttackerKind::ALL.into_iter().enumerate() {
        let cfg = StorageConfig::optimal(1, 1, 1);
        let topo = two_node_topology(cfg);
        let mut ncfg = NetNodeConfig::<u64>::new(cfg, ProtocolKind::RegularOptimized);
        ncfg.byzantine = vec![ByzSpec {
            slot: 0,
            object: cfg.s - 1,
            kind,
            forged: 999_999,
        }];
        let n0 = NetNode::start(0, &topo, ncfg.clone()).expect("node 0");
        let n1 = NetNode::start(1, &topo, ncfg).expect("node 1");

        let clock = Clock::default();
        let mut rec = Recorder::new();
        let mut g = Gen(0xC0FFEE ^ i as u64);
        for _ in 0..24 {
            if g.next().is_multiple_of(2) {
                rec.write(&clock, |seq| {
                    n0.write_slot(0, seq);
                });
            } else {
                rec.read(0, &clock, || n1.read_slot(0, 0).value);
            }
        }

        rec.history.validate().expect("well-formed history");
        let result = check_regularity(&rec.history);
        assert!(
            result.is_ok(),
            "attacker {kind:?} broke regularity: {result:?}"
        );
    }
}

/// A `vrr-server` child process plus its READY-advertised address.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    fn spawn(node: u32, addrs: &[SocketAddr], epoch: u32) -> Server {
        let addr_list = addrs
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut child = Command::new(env!("CARGO_BIN_EXE_vrr-server"))
            .args([
                "--node",
                &node.to_string(),
                "--addrs",
                &addr_list,
                "--t",
                "1",
                "--b",
                "1",
                "--readers",
                "1",
                "--kind",
                "regular-opt",
                "--place-objects",
                "0,0,0,1",
                "--place-writer",
                "0",
                "--place-readers",
                "0",
                "--epoch",
                &epoch.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn vrr-server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read READY line");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
            .parse()
            .expect("parse READY addr");
        Server { child, addr }
    }

    fn kill(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Fault class 2: node 1 (hosting one of four objects) is killed while
/// reads are in flight, then restarted amnesiac with a bumped epoch. One
/// crashed-then-amnesiac object is within `min(t, b) = 1`, so every read
/// that completes — during the outage and after the rebirth — must still
/// be regular.
#[test]
fn kill_and_restart_server_mid_read() {
    let addrs = free_addrs(2).expect("reserve ports");
    let s0 = Server::spawn(0, &addrs, 0);
    let mut s1 = Server::spawn(1, &addrs, 0);
    assert_eq!(s0.addr, addrs[0]);

    let mut writer = NetClient::<u64>::connect(s0.addr).expect("writer client");
    let mut reader = NetClient::<u64>::connect(s0.addr).expect("reader client");

    let clock = Clock::default();
    let mut rec = Recorder::new();

    // Warm up: both nodes alive.
    for _ in 0..4 {
        rec.write(&clock, |seq| {
            writer.write_slot(0, seq).expect("write (healthy)");
        });
        rec.read(0, &clock, || {
            reader.read_slot(0, 0).expect("read (healthy)").value
        });
    }

    // Kill node 1 while a read burst runs on another thread, so the kill
    // lands mid-read with high probability.
    let read_clock = clock.clone();
    let reads = std::thread::spawn(move || {
        let mut records = Vec::new();
        for _ in 0..12 {
            let invoked = read_clock.tick();
            let value = reader.read_slot(0, 0).expect("read (outage)").value;
            records.push((invoked, value, read_clock.tick()));
        }
        records
    });
    std::thread::sleep(Duration::from_millis(30));
    s1.kill();

    // Writes keep completing on node 0's local quorum of 3.
    for _ in 0..4 {
        rec.write(&clock, |seq| {
            writer.write_slot(0, seq).expect("write (outage)");
        });
    }
    let outage_reads = reads.join().expect("reader thread");

    // Rebirth: same address, empty state, fresh epoch. The original
    // reader client was consumed by the outage thread; reconnect.
    let s1b = Server::spawn(1, &addrs, 1);
    assert_eq!(s1b.addr, addrs[1]);
    let mut reader = NetClient::<u64>::connect(s0.addr).expect("reader client (rebirth)");
    for _ in 0..4 {
        rec.write(&clock, |seq| {
            writer.write_slot(0, seq).expect("write (rebirth)");
        });
        rec.read(0, &clock, || {
            reader.read_slot(0, 0).expect("read (rebirth)").value
        });
    }

    for (invoked, value, completed) in outage_reads {
        rec.history
            .push_read(0, value.unwrap_or(0), value, invoked, Some(completed));
    }
    rec.history.validate().expect("well-formed history");
    let result = check_regularity(&rec.history);
    assert!(result.is_ok(), "kill+restart broke regularity: {result:?}");

    let mut ctl = NetClient::<u64>::connect(s0.addr).expect("ctl client");
    ctl.shutdown_server().ok();
}

/// Fault class 3: the reader node's connections to the remote object node
/// are reset over and over while reads run. Frames buffered for the dead
/// connections are dropped (lossy on reset) — reads must still complete
/// off the local quorum and stay regular, and the transport must count
/// its reconnects.
#[test]
fn connection_resets_between_read_rounds_stay_regular() {
    // Node 0: writer, reader, 3 objects (a full quorum, S - t = 3).
    // Node 1: the fourth object, reachable only through resettable conns.
    let cfg = StorageConfig::optimal(1, 1, 1);
    let topo = NodeTopology {
        addrs: free_addrs(2).expect("reserve ports"),
        placement: GroupPlacement {
            objects: vec![0, 0, 0, 1],
            writer: 0,
            readers: vec![0; cfg.readers],
        },
        slots: 1,
    };
    let ncfg = NetNodeConfig::<u64>::new(cfg, ProtocolKind::Regular);
    let n0 = NetNode::start(0, &topo, ncfg.clone()).expect("node 0");
    let _n1 = NetNode::start(1, &topo, ncfg).expect("node 1");

    let mut ctl = NetClient::<u64>::connect(n0.addr()).expect("ctl client");
    let clock = Clock::default();
    let mut rec = Recorder::new();
    let mut g = Gen(0xBADC0DE);

    for i in 0..30 {
        if g.next().is_multiple_of(3) {
            rec.write(&clock, |seq| {
                n0.write_slot(0, seq);
            });
        } else {
            rec.read(0, &clock, || n0.read_slot(0, 0).value);
        }
        if i % 4 == 1 {
            // Sever node 0 → node 1 between protocol rounds.
            ctl.reset_peer(1).expect("reset peer");
        }
    }

    rec.history.validate().expect("well-formed history");
    let result = check_regularity(&rec.history);
    assert!(result.is_ok(), "resets broke regularity: {result:?}");

    let metrics = ctl.metrics().expect("metrics");
    assert!(
        metrics.contains("vrr_net_wire_reconnects_total"),
        "reconnects not reported:\n{metrics}"
    );
}
