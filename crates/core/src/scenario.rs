//! A storage-aware scenario harness: one deployed register protocol under a
//! scripted fault scenario, with every operation metered.
//!
//! [`StorageScenario`] glues three layers together:
//!
//! * a [`vrr_sim::Scenario`] (seeded world + fault script: partitions,
//!   heals, lossy links, timed crashes),
//! * a deployed [`RegisterProtocol`] (objects, writer, readers),
//! * a [`metrics::Registry`] that records every operation's rounds and
//!   latency under the canonical `vrr_*` names.
//!
//! Tests that used to hand-wire a `World`, deploy, corrupt an object,
//! install hold rules and drive `run_read` now say what they mean:
//!
//! ```
//! use vrr_core::{RegularProtocol, StorageConfig, StorageScenario};
//! use vrr_core::attackers::AttackerKind;
//!
//! let cfg = StorageConfig::optimal(1, 1, 2); // S = 4: t = 1, b = 1
//! let mut sc = StorageScenario::deploy(RegularProtocol::optimized(), cfg, 42);
//! sc.attack_object(0, AttackerKind::Inflator, 0xBAD_u64);
//! sc.write(7);
//! assert_eq!(sc.read(0).value, Some(7)); // the liar cannot win
//!
//! let snapshot = sc.metrics_snapshot();
//! assert!(snapshot.to_prometheus().contains("vrr_reader_rounds_count 1"));
//! ```
//!
//! The same snapshot shape — identical metric names — is produced by
//! `vrr-runtime`'s `StorageCluster::metrics_snapshot()`, so assertions and
//! dashboards carry over between the simulator and the thread runtime.

use std::marker::PhantomData;

use vrr_sim::{Automaton, LatencyModel, ProcessId, Quiescence, RuleId, Scenario, SimTime, World};

use crate::attackers::AttackerKind;
use crate::config::StorageConfig;
use crate::harness::{Deployment, ReadReport, RegisterProtocol, WriteReport, OP_STEP_LIMIT};
use crate::metrics::{self, MetricsSink, Registry};
use crate::safe::FastPathStats;
use crate::types::Value;

/// A deployed register protocol under a scripted, seeded fault scenario.
///
/// See the module-level docs above for the layering. All fault-script methods
/// chain (`&mut self -> &mut Self`); operations ([`write`], [`read`]) drive
/// the scenario until the operation completes, firing any scripted events
/// that come due on the way.
///
/// [`write`]: StorageScenario::write
/// [`read`]: StorageScenario::read
#[derive(Debug)]
pub struct StorageScenario<V: Value, P: RegisterProtocol<V>> {
    protocol: P,
    scenario: Scenario<P::Msg>,
    dep: Deployment,
    ops: Registry,
    _marker: PhantomData<V>,
}

impl<V: Value, P: RegisterProtocol<V>> StorageScenario<V, P> {
    /// Deploys `protocol` at sizing `cfg` into a fresh world seeded with
    /// `seed`, and starts it.
    pub fn deploy(protocol: P, cfg: StorageConfig, seed: u64) -> Self {
        let mut scenario = Scenario::seed(seed);
        let dep = protocol.deploy(cfg, scenario.world_mut());
        scenario.start();
        StorageScenario {
            protocol,
            scenario,
            dep,
            ops: Registry::new(),
            _marker: PhantomData,
        }
    }

    /// Replaces the latency model of the underlying world.
    pub fn latency(&mut self, model: impl LatencyModel<P::Msg> + 'static) -> &mut Self {
        self.scenario.latency(model);
        self
    }

    // ---- topology accessors ----------------------------------------------

    /// The deployment (object/writer/reader process ids).
    pub fn dep(&self) -> &Deployment {
        &self.dep
    }

    /// The sizing this scenario was deployed with.
    pub fn cfg(&self) -> StorageConfig {
        self.dep.cfg
    }

    /// The protocol under test.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Process id of base object `idx`.
    pub fn object(&self, idx: usize) -> ProcessId {
        self.dep.objects[idx]
    }

    /// Process id of reader `j`.
    pub fn reader(&self, j: usize) -> ProcessId {
        self.dep.readers[j]
    }

    /// Process id of the writer.
    pub fn writer(&self) -> ProcessId {
        self.dep.writer
    }

    /// The underlying world, read-only.
    pub fn world(&self) -> &World<P::Msg> {
        self.scenario.world()
    }

    /// The underlying world (see [`Scenario::world_mut`] for the caveat).
    pub fn world_mut(&mut self) -> &mut World<P::Msg> {
        self.scenario.world_mut()
    }

    /// The underlying fault scenario.
    pub fn scenario_mut(&mut self) -> &mut Scenario<P::Msg> {
        &mut self.scenario
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.scenario.now()
    }

    // ---- fault script ------------------------------------------------------

    /// Partitions the given base objects away from everything else,
    /// immediately (see [`Scenario::partition`]).
    pub fn partition_objects(&mut self, idxs: &[usize]) -> &mut Self {
        let group: Vec<ProcessId> = idxs.iter().map(|&i| self.dep.objects[i]).collect();
        self.scenario.partition(vec![group]);
        self
    }

    /// Schedules a partition of the given base objects for time `at`.
    pub fn partition_objects_at(&mut self, at: SimTime, idxs: &[usize]) -> &mut Self {
        let group: Vec<ProcessId> = idxs.iter().map(|&i| self.dep.objects[i]).collect();
        self.scenario.partition_at(at, vec![group]);
        self
    }

    /// Heals the current partition immediately (see [`Scenario::heal_now`]).
    pub fn heal_now(&mut self) -> &mut Self {
        self.scenario.heal_now();
        self
    }

    /// Schedules a heal for time `at` (see [`Scenario::heal_at`]).
    pub fn heal_at(&mut self, at: SimTime) -> &mut Self {
        self.scenario.heal_at(at);
        self
    }

    /// Makes the directed link `from → to` lossy (see
    /// [`Scenario::drop_rate`] for the soundness caveat).
    pub fn drop_rate(&mut self, from: ProcessId, to: ProcessId, p: f64) -> &mut Self {
        self.scenario.drop_rate(from, to, p);
        self
    }

    /// Makes the directed link `from → to` reorder messages (see
    /// [`Scenario::reorder`]).
    pub fn reorder(&mut self, from: ProcessId, to: ProcessId, p: f64) -> &mut Self {
        self.scenario.reorder(from, to, p);
        self
    }

    /// Crashes base object `idx` immediately.
    pub fn crash_object(&mut self, idx: usize) -> &mut Self {
        let pid = self.dep.objects[idx];
        self.scenario.crash_now(pid);
        self
    }

    /// Schedules a crash of base object `idx` at time `at`.
    pub fn crash_object_at(&mut self, idx: usize, at: SimTime) -> &mut Self {
        let pid = self.dep.objects[idx];
        self.scenario.crash(pid, at);
        self
    }

    /// Crashes reader `j` immediately (a reader that stops participating —
    /// the case reader-ack GC's cap exists for).
    pub fn crash_reader(&mut self, j: usize) -> &mut Self {
        let pid = self.dep.readers[j];
        self.scenario.crash_now(pid);
        self
    }

    /// Replaces base object `idx` with an arbitrary Byzantine automaton.
    pub fn byzantine_object(
        &mut self,
        idx: usize,
        automaton: Box<dyn Automaton<P::Msg>>,
    ) -> &mut Self {
        let pid = self.dep.objects[idx];
        self.scenario.byzantine(pid, automaton);
        self
    }

    /// Replaces base object `idx` with attacker `kind` from the catalogue,
    /// forging `forged` where the attack needs a fake value.
    ///
    /// # Panics
    ///
    /// Panics if the protocol has no attacker catalogue
    /// (see [`RegisterProtocol::corruptor`]).
    pub fn attack_object(&mut self, idx: usize, kind: AttackerKind, forged: V) -> &mut Self {
        let automaton = self
            .protocol
            .corruptor(kind, self.dep.cfg, forged)
            .unwrap_or_else(|| panic!("{} has no attacker catalogue", self.protocol.name()));
        self.byzantine_object(idx, automaton)
    }

    /// Holds every message on the directed link `from → to`; returns the
    /// rule handle for [`StorageScenario::remove_rule`].
    pub fn hold_link(&mut self, from: ProcessId, to: ProcessId) -> RuleId {
        self.scenario.hold_link(from, to)
    }

    /// Removes an adversary rule.
    pub fn remove_rule(&mut self, id: RuleId) -> bool {
        self.scenario.remove_rule(id)
    }

    /// Releases every held message.
    pub fn release_all(&mut self) -> usize {
        self.scenario.release_all()
    }

    // ---- drivers -----------------------------------------------------------

    /// Advances simulation time by `ticks`, firing scripted events on the
    /// way.
    pub fn fast_forward(&mut self, ticks: u64) -> &mut Self {
        self.scenario.fast_forward(ticks);
        self
    }

    /// Drives the run until everything drains (see
    /// [`Scenario::run_until_idle`]).
    pub fn run_until_idle(&mut self, limit: u64) -> Quiescence {
        self.scenario.run_until_idle(limit)
    }

    /// Invokes `WRITE(value)` and drives the scenario until it completes,
    /// recording rounds and latency metrics.
    ///
    /// # Panics
    ///
    /// Panics if the write does not complete within [`OP_STEP_LIMIT`]
    /// scenario steps — a wait-freedom violation unless the fault script
    /// cut the writer off from a quorum.
    pub fn write(&mut self, value: V) -> WriteReport {
        let invoked = self.scenario.now().ticks();
        let op = self
            .protocol
            .invoke_write(&self.dep, self.scenario.world_mut(), value);
        let (protocol, dep) = (&self.protocol, &self.dep);
        let done = self.scenario.run_until(
            |w| protocol.write_outcome(dep, w, op).is_some(),
            OP_STEP_LIMIT,
        );
        assert!(done, "WRITE failed to complete (wait-freedom violation?)");
        let report = self
            .protocol
            .write_outcome(&self.dep, self.scenario.world(), op)
            .expect("just completed");
        self.ops
            .observe(metrics::names::WRITER_ROUNDS, &[], u64::from(report.rounds));
        self.ops.observe(
            metrics::names::WRITE_LATENCY,
            &[],
            self.scenario.now().ticks() - invoked,
        );
        report
    }

    /// Invokes `READ()` at reader `j` and drives the scenario until it
    /// completes, recording rounds and latency metrics.
    ///
    /// # Panics
    ///
    /// Panics if the read does not complete within [`OP_STEP_LIMIT`]
    /// scenario steps (see [`StorageScenario::write`]).
    pub fn read(&mut self, j: usize) -> ReadReport<V> {
        let invoked = self.scenario.now().ticks();
        let op = self
            .protocol
            .invoke_read(&self.dep, self.scenario.world_mut(), j);
        let (protocol, dep) = (&self.protocol, &self.dep);
        let done = self.scenario.run_until(
            |w| protocol.read_outcome(dep, w, j, op).is_some(),
            OP_STEP_LIMIT,
        );
        assert!(done, "READ failed to complete (wait-freedom violation?)");
        let report = self
            .protocol
            .read_outcome(&self.dep, self.scenario.world(), j, op)
            .expect("just completed");
        self.ops
            .observe(metrics::names::READER_ROUNDS, &[], u64::from(report.rounds));
        self.ops.observe(
            metrics::names::READ_LATENCY,
            &[],
            self.scenario.now().ticks() - invoked,
        );
        report
    }

    // ---- observability -------------------------------------------------------

    /// Aggregated fast-path counters, if the protocol has a fast path.
    pub fn fast_path_stats(&self) -> Option<FastPathStats> {
        self.protocol
            .fast_path_stats(&self.dep, self.scenario.world())
    }

    /// Per-object stored history lengths, if the protocol keeps histories
    /// (Byzantine-replaced objects are skipped).
    pub fn history_lens(&self) -> Option<Vec<usize>> {
        self.protocol.history_lens(&self.dep, self.scenario.world())
    }

    /// The largest stored history across this deployment's honest objects
    /// (0 if the protocol keeps no histories).
    pub fn max_history_len(&self) -> usize {
        self.history_lens()
            .map(|lens| lens.into_iter().max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// One deterministic snapshot of everything observable about this run:
    /// operation rounds/latency histograms, network counters, the fault
    /// script, fast-path counters and per-object history lengths — all
    /// under the canonical `vrr_*` names ([`metrics::names`]).
    pub fn metrics_snapshot(&self) -> Registry {
        let mut reg = self.ops.clone();
        metrics::record_net_stats(&mut reg, &self.scenario.net_stats());
        metrics::record_scenario_stats(&mut reg, &self.scenario.stats());
        reg.gauge_set(
            metrics::names::SCENARIO_TIME,
            &[],
            self.scenario.now().ticks(),
        );
        reg.gauge_set(
            metrics::names::SCENARIO_HELD_MSGS,
            &[],
            self.scenario.world().held().len() as u64,
        );
        if let Some(stats) = self.fast_path_stats() {
            metrics::record_fast_path(&mut reg, &stats);
        }
        if let Some(lens) = self.history_lens() {
            metrics::record_history_lens(&mut reg, None, &lens);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{RegularProtocol, SafeProtocol};
    use crate::metrics::names;

    #[test]
    fn deploy_write_read_records_metrics() {
        let cfg = StorageConfig::optimal(1, 1, 2);
        let mut sc = StorageScenario::deploy(RegularProtocol::optimized(), cfg, 7);
        sc.write(11u64);
        sc.write(22u64);
        let r = sc.read(0);
        assert_eq!(r.value, Some(22));
        let snap = sc.metrics_snapshot();
        assert_eq!(
            snap.histogram(names::WRITER_ROUNDS, &[]).unwrap().count(),
            2
        );
        assert_eq!(
            snap.histogram(names::READER_ROUNDS, &[]).unwrap().count(),
            1
        );
        assert!(snap.histogram(names::READ_LATENCY, &[]).unwrap().sum() > 0);
        assert!(snap.counter(names::NET_SENT, &[]) > 0);
        // At optimal sizing there is no fast path, but the counters exist.
        assert_eq!(snap.counter(names::READER_FAST_HITS, &[]), 0);
        assert_eq!(snap.gauge_values(names::OBJECT_HISTORY_LEN).len(), cfg.s);
    }

    #[test]
    fn attack_object_uses_the_protocol_catalogue() {
        let cfg = StorageConfig::optimal(1, 1, 1);
        let mut sc = StorageScenario::deploy(SafeProtocol, cfg, 3);
        sc.attack_object(1, AttackerKind::Inflator, 0xBAD_u64);
        sc.write(5u64);
        assert_eq!(sc.read(0).value, Some(5));
        let snap = sc.metrics_snapshot();
        assert_eq!(snap.counter(names::SCENARIO_BYZANTINE, &[]), 1);
        // Safe storage keeps no histories.
        assert!(sc.history_lens().is_none());
    }

    #[test]
    fn partition_blocks_and_heal_unblocks_a_read() {
        // Fast sizing S = 5 (t = b = 1): a read needs S - t = 4 replies, so
        // partitioning two objects away stalls it until the heal fires.
        let cfg = StorageConfig::fast(1, 1, 1);
        let mut sc = StorageScenario::deploy(RegularProtocol::optimized(), cfg, 9);
        sc.write(1u64);
        sc.partition_objects(&[0, 1])
            .heal_at(SimTime::from_ticks(500));
        let r = sc.read(0);
        assert_eq!(r.value, Some(1));
        assert!(
            sc.now() >= SimTime::from_ticks(500),
            "the read must have waited for the heal"
        );
        let snap = sc.metrics_snapshot();
        assert_eq!(snap.counter(names::SCENARIO_PARTITIONS, &[]), 1);
        assert_eq!(snap.counter(names::SCENARIO_HEALS, &[]), 1);
    }

    #[test]
    fn fast_path_hits_are_exported() {
        let cfg = StorageConfig::fast(1, 1, 1);
        let mut sc = StorageScenario::deploy(RegularProtocol::optimized(), cfg, 5);
        sc.write(4u64);
        let r = sc.read(0);
        assert!(r.fast, "quiet read at fast sizing must take one round");
        let snap = sc.metrics_snapshot();
        assert_eq!(snap.counter(names::READER_FAST_HITS, &[]), 1);
        assert_eq!(snap.counter(names::READER_FAST_FALLBACKS, &[]), 0);
        assert_eq!(
            snap.histogram(names::READER_ROUNDS, &[])
                .unwrap()
                .cumulative_le(1),
            1
        );
    }
}
