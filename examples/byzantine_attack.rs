//! Byzantine attack study: what `b` lying objects can and cannot do.
//!
//! Runs the full attacker catalogue against the paper's safe storage at
//! optimal resilience and shows every read still returns the true value in
//! exactly two rounds. Then runs the *same* inflation attack against the
//! crash-only ABD baseline and watches it hand back a phantom value —
//! the gap the paper's protocols exist to close.
//!
//! Every run is scripted through the [`StorageScenario`] builder, which
//! also exports a metrics snapshot of the attack run.
//!
//! Run with `cargo run --example byzantine_attack`.

use vrr::baselines::{AbdProtocol, LiteMsg, LiteObject};
use vrr::core::attackers::AttackerKind;
use vrr::core::metrics::names;
use vrr::core::{SafeProtocol, StorageConfig, StorageScenario, Timestamp, TsVal};
use vrr::sim::Tamper;

fn main() {
    let cfg = StorageConfig::optimal(2, 2, 1); // S = 7, up to 2 Byzantine
    println!("safe storage under attack: {cfg:?}\n");

    for kind in AttackerKind::ALL {
        let mut sc = StorageScenario::deploy(SafeProtocol, cfg, 7);

        // Corrupt b objects with this attacker.
        for i in 0..cfg.b {
            sc.attack_object(i, kind, 0xDEADu64);
        }

        sc.write(1_000_000);
        let r = sc.read(0);
        println!(
            "  {kind:<12?} x{}: READ -> {:?} in {} rounds   (filtered out the lies)",
            cfg.b, r.value, r.rounds
        );
        assert_eq!(
            r.value,
            Some(1_000_000),
            "{kind:?} must not corrupt the read"
        );
        assert_eq!(r.rounds, 2, "{kind:?} must not slow the read");
        // The snapshot carries the fault script alongside the op stats.
        let snap = sc.metrics_snapshot();
        assert_eq!(
            snap.counter(names::SCENARIO_BYZANTINE, &[]),
            cfg.b as u64,
            "every substitution is accounted for"
        );
    }

    // The contrast: ABD trusts the highest timestamp it sees.
    println!("\ncrash-only ABD under the same inflation attack:");
    let abd_cfg = StorageConfig::crash_only(2, 1); // S = 5
    let mut sc = StorageScenario::deploy(AbdProtocol::default(), abd_cfg, 7);
    sc.byzantine_object(
        0,
        Box::new(Tamper::new(LiteObject::<u64>::new(), |to, msg| {
            let msg = match msg {
                LiteMsg::ReadAck { nonce, pw, .. } => LiteMsg::ReadAck {
                    nonce,
                    pw,
                    w: TsVal::new(Timestamp(u64::MAX / 2), 0xDEAD),
                },
                other => other,
            };
            vec![(to, msg)]
        })),
    );
    sc.write(1_000_000u64);
    let r = sc.read(0);
    println!(
        "  one liar out of {}: READ -> {:?}  <- phantom value believed!",
        abd_cfg.s, r.value
    );
    assert_eq!(
        r.value,
        Some(0xDEAD),
        "ABD has no Byzantine defence, by design"
    );

    println!(
        "\nconclusion: b+1-corroboration plus the two-round active read keep the \
         register honest at S = 2t+b+1; a crash-only protocol falls to a single liar."
    );
}
