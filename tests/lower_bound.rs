//! Integration tests for the executable Proposition 1 and its boundary.

use vrr::lowerbound::{
    execute_control, execute_prop1, GossipPairSpec, LitePairSpec, ReadRule, Verdict,
};

#[test]
fn every_fast_read_rule_is_convicted_at_the_boundary() {
    for (t, b) in [(1, 1), (2, 1), (2, 2), (3, 2), (3, 3), (4, 2)] {
        let s = 2 * t + 2 * b;
        let mut rules = vec![ReadRule::Masking, ReadRule::TrustHighest];
        for k in 1..=s {
            rules.push(ReadRule::Threshold(k));
        }
        for rule in rules {
            let spec = LitePairSpec::new(s, t, b, rule);
            let report = execute_prop1(&spec, b, 7u64);
            assert!(report.write_completed);
            assert!(
                report.verdict.is_violation(),
                "t={t} b={b} {rule:?}: escaped the construction"
            );
        }
    }
}

#[test]
fn violations_split_exactly_between_run4_and_run5() {
    // A rule either misses the write (run4) or believes a phantom (run5) —
    // never neither; both only if it invents a third value (our rules
    // cannot).
    for (t, b) in [(1, 1), (2, 2)] {
        let s = 2 * t + 2 * b;
        for k in 1..=s {
            let spec = LitePairSpec::new(s, t, b, ReadRule::Threshold(k));
            match execute_prop1(&spec, b, 7u64).verdict {
                Verdict::Violation {
                    run4_violated,
                    run5_violated,
                    ..
                } => {
                    assert!(
                        run4_violated ^ run5_violated,
                        "k={k}: exactly one side breaks"
                    );
                }
                Verdict::NotFast => panic!("threshold rules always decide"),
            }
        }
    }
}

#[test]
fn one_extra_object_restores_safety_for_masking() {
    for (t, b) in [(1, 1), (2, 1), (2, 2), (3, 3)] {
        let spec = LitePairSpec::new(2 * t + 2 * b + 1, t, b, ReadRule::Masking);
        let report = execute_control(&spec, b, 7u64);
        assert!(report.is_safe(), "t={t} b={b}");
    }
}

#[test]
fn extra_objects_do_not_save_uncorroborated_rules() {
    let (t, b) = (2, 1);
    let spec = LitePairSpec::new(2 * t + 2 * b + 1, t, b, ReadRule::TrustHighest);
    let report = execute_control(&spec, b, 7u64);
    assert!(
        !report.is_safe(),
        "trusting timestamps blindly is never safe with b > 0"
    );
}

#[test]
fn server_centric_gossip_does_not_evade_the_bound() {
    for gossip in [0, 1, 5] {
        for (t, b) in [(1, 1), (2, 2)] {
            let s = 2 * t + 2 * b;
            let spec = GossipPairSpec::new(LitePairSpec::new(s, t, b, ReadRule::Masking), gossip);
            let report = execute_prop1(&spec, b, 7u64);
            assert!(report.verdict.is_violation(), "gossip={gossip} t={t} b={b}");
        }
    }
}

#[test]
fn the_view_is_what_makes_it_inescapable() {
    // The decision function sees ONE view standing for three runs: assert
    // the harness really hands the same view content that run3 would
    // produce — S − t replies, none from T2.
    let (t, b) = (2, 1);
    let spec = LitePairSpec::new(2 * t + 2 * b, t, b, ReadRule::Masking);
    let report = execute_prop1(&spec, b, 7u64);
    assert_eq!(report.view.len(), 2 * t + 2 * b - t);
    for obj in report.partition.t2.iter() {
        assert!(
            !report.view.contains_key(obj),
            "T2 must be invisible to the reader"
        );
    }
    // B2 is the only block that saw the write; its replies carry v1.
    for obj in &report.partition.b2 {
        let (_pw, w) = &report.view[obj];
        assert_eq!(w.value, Some(7), "B2 replies from σ2");
    }
    for obj in report.partition.b1.iter().chain(&report.partition.t1) {
        let (_pw, w) = &report.view[obj];
        assert_eq!(w.value, None, "B1/T1 reply from pre-write states");
    }
}
