//! Concrete fast-read implementations to feed the impossibility harness.
//!
//! Each strawman follows the classical "passive quorum read" template: a
//! two-phase write (pre-write `pw`, then `w`) and a single-round read that
//! applies a decision rule to the `S − t` replies. The rules span the
//! design space a protocol author might try at `S = 2t + 2b`; the harness
//! shows each of them (indeed *any* deterministic rule, since the view is
//! fixed) violates safety in run4 or run5.

use std::collections::BTreeMap;

use vrr_core::{Timestamp, TsVal};

use crate::spec::FastReadSpec;

/// Decision rules for the single-round read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadRule {
    /// Return the highest pair reported identically by ≥ `b + 1` objects;
    /// refuse to decide if no pair qualifies. (The sound rule at
    /// `S ≥ 2t + 2b + 1`, via `vrr_baselines::MaskingProtocol`'s logic.)
    Masking,
    /// Believe the highest timestamp outright (no corroboration).
    TrustHighest,
    /// Return the highest pair with ≥ `k` identical reports, `⊥` if none.
    Threshold(usize),
}

/// A passive-quorum storage implementation with a pluggable read rule.
///
/// Values are `u64`; object state is the pair of registers `(pw, w)`.
#[derive(Clone, Debug)]
pub struct LitePairSpec {
    s: usize,
    t: usize,
    b: usize,
    rule: ReadRule,
}

impl LitePairSpec {
    /// A spec over `s` objects with fault budgets `t`/`b` and the given
    /// read rule.
    ///
    /// # Panics
    ///
    /// Panics if `s ≤ t` (no quorum possible).
    pub fn new(s: usize, t: usize, b: usize, rule: ReadRule) -> Self {
        assert!(s > t, "need S > t");
        LitePairSpec { s, t, b, rule }
    }

    /// The configured read rule.
    pub fn rule(&self) -> ReadRule {
        self.rule
    }
}

impl FastReadSpec for LitePairSpec {
    type Value = u64;
    type ObjState = (TsVal<u64>, TsVal<u64>);
    type Reply = (TsVal<u64>, TsVal<u64>);

    fn object_count(&self) -> usize {
        self.s
    }

    fn max_faulty(&self) -> usize {
        self.t
    }

    fn initial_state(&self) -> Self::ObjState {
        (TsVal::bottom(), TsVal::bottom())
    }

    fn run_write(&self, value: u64, states: &mut [Self::ObjState], reachable: &[bool]) -> bool {
        let quorum = self.s - self.t;
        let reach_count = reachable.iter().filter(|r| **r).count();
        if reach_count < quorum {
            return false; // the writer never hears enough acks
        }
        let ts = Timestamp(states.iter().map(|(_, w)| w.ts.0).max().unwrap_or(0) + 1);
        let pair = TsVal::new(ts, value);
        // Phase 1: pre-write to every reachable object.
        for (i, st) in states.iter_mut().enumerate() {
            if reachable[i] && pair.ts > st.0.ts {
                st.0 = pair.clone();
            }
        }
        // Phase 2: write to every reachable object.
        for (i, st) in states.iter_mut().enumerate() {
            if reachable[i] && pair.ts > st.1.ts {
                st.1 = pair.clone();
                if pair.ts > st.0.ts {
                    st.0 = pair.clone();
                }
            }
        }
        true
    }

    fn read_reply(&self, _i: usize, state: &mut Self::ObjState, _reader_ts: u64) -> Self::Reply {
        state.clone() // passive read: report both registers
    }

    fn decide(&self, replies: &BTreeMap<usize, Self::Reply>) -> Option<Option<u64>> {
        let mut counts: BTreeMap<&TsVal<u64>, usize> = BTreeMap::new();
        for (_pw, w) in replies.values() {
            *counts.entry(w).or_insert(0) += 1;
        }
        let best_with = |k: usize| {
            counts
                .iter()
                .filter(|(_, n)| **n >= k)
                .map(|(pair, _)| (*pair).clone())
                .max_by_key(|pair| pair.ts)
        };
        match self.rule {
            ReadRule::Masking => best_with(self.b + 1).map(|pair| pair.value),
            ReadRule::TrustHighest => Some(best_with(1).map(|pair| pair.value).unwrap_or(None)),
            ReadRule::Threshold(k) => Some(best_with(k).map(|p| p.value).unwrap_or(None)),
        }
    }
}

/// The server-centric strawman (§6): base objects are first-class servers
/// that push state to their peers, so a write spreads both through the
/// writer's own rounds *and* through inter-server gossip.
///
/// The lower bound survives the upgrade: gossip messages are messages, and
/// the Figure-1 adversary keeps them in transit exactly like the writer's.
/// Servers unreachable during the write (`T1`) stay ignorant, and the
/// reader's `S − t`-reply view is unchanged — so every decision rule fails
/// the same way it does in the data-centric model.
#[derive(Clone, Debug)]
pub struct GossipPairSpec {
    inner: LitePairSpec,
    /// Gossip fan-out rounds executed among reachable servers after the
    /// write (each round: pairwise max-merge of both registers).
    pub gossip_rounds: usize,
}

impl GossipPairSpec {
    /// A server-centric spec: `inner` semantics plus `gossip_rounds` of
    /// peer merging among reachable servers.
    pub fn new(inner: LitePairSpec, gossip_rounds: usize) -> Self {
        GossipPairSpec {
            inner,
            gossip_rounds,
        }
    }
}

impl FastReadSpec for GossipPairSpec {
    type Value = u64;
    type ObjState = (TsVal<u64>, TsVal<u64>);
    type Reply = (TsVal<u64>, TsVal<u64>);

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn max_faulty(&self) -> usize {
        self.inner.max_faulty()
    }

    fn initial_state(&self) -> Self::ObjState {
        self.inner.initial_state()
    }

    fn run_write(&self, value: u64, states: &mut [Self::ObjState], reachable: &[bool]) -> bool {
        if !self.inner.run_write(value, states, reachable) {
            return false;
        }
        // Server-centric power: reachable servers gossip. Messages to the
        // unreachable stay in transit (the adversary delays them like any
        // other message), so gossip cannot leak past the partition.
        for _ in 0..self.gossip_rounds {
            let best_pw = states
                .iter()
                .zip(reachable)
                .filter(|(_, r)| **r)
                .map(|(st, _)| st.0.clone())
                .max_by_key(|p| p.ts)
                .unwrap_or_else(TsVal::bottom);
            let best_w = states
                .iter()
                .zip(reachable)
                .filter(|(_, r)| **r)
                .map(|(st, _)| st.1.clone())
                .max_by_key(|p| p.ts)
                .unwrap_or_else(TsVal::bottom);
            for (st, r) in states.iter_mut().zip(reachable) {
                if *r {
                    if best_pw.ts > st.0.ts {
                        st.0 = best_pw.clone();
                    }
                    if best_w.ts > st.1.ts {
                        st.1 = best_w.clone();
                    }
                }
            }
        }
        true
    }

    fn read_reply(&self, i: usize, state: &mut Self::ObjState, reader_ts: u64) -> Self::Reply {
        self.inner.read_reply(i, state, reader_ts)
    }

    fn decide(&self, replies: &BTreeMap<usize, Self::Reply>) -> Option<Option<u64>> {
        self.inner.decide(replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replies(pairs: &[(u64, Option<u64>)]) -> BTreeMap<usize, (TsVal<u64>, TsVal<u64>)> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, (ts, v))| {
                let pair = TsVal {
                    ts: Timestamp(*ts),
                    value: *v,
                };
                (i, (pair.clone(), pair))
            })
            .collect()
    }

    #[test]
    fn masking_rule_needs_corroboration() {
        let spec = LitePairSpec::new(5, 1, 1, ReadRule::Masking);
        // One report of ts 9 (liar), two of ts 1, two of ⊥.
        let view = replies(&[
            (9, Some(90)),
            (1, Some(10)),
            (1, Some(10)),
            (0, None),
            (0, None),
        ]);
        assert_eq!(spec.decide(&view), Some(Some(10)));
    }

    #[test]
    fn masking_rule_refuses_without_quorum_agreement() {
        let spec = LitePairSpec::new(5, 1, 1, ReadRule::Masking);
        let view = replies(&[
            (9, Some(90)),
            (8, Some(80)),
            (7, Some(70)),
            (6, Some(60)),
            (5, Some(50)),
        ]);
        assert_eq!(spec.decide(&view), None, "no pair corroborated: block");
    }

    #[test]
    fn trust_highest_believes_liars() {
        let spec = LitePairSpec::new(4, 1, 1, ReadRule::TrustHighest);
        let view = replies(&[(9, Some(90)), (1, Some(10)), (1, Some(10)), (0, None)]);
        assert_eq!(spec.decide(&view), Some(Some(90)));
    }

    #[test]
    fn write_respects_reachability() {
        let spec = LitePairSpec::new(4, 1, 1, ReadRule::Masking);
        let mut states = vec![spec.initial_state(); 4];
        let ok = spec.run_write(42, &mut states, &[false, true, true, true]);
        assert!(ok);
        assert_eq!(states[0].1.value, None, "unreachable object untouched");
        assert_eq!(states[1].1.value, Some(42));
    }

    #[test]
    fn write_fails_without_quorum() {
        let spec = LitePairSpec::new(4, 1, 1, ReadRule::Masking);
        let mut states = vec![spec.initial_state(); 4];
        let ok = spec.run_write(42, &mut states, &[false, false, true, true]);
        assert!(!ok, "2 reachable < S − t = 3");
    }
}
