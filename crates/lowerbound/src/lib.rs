//! # vrr-lowerbound: Proposition 1 as an executable artifact
//!
//! The paper's first contribution is an impossibility: **no safe storage
//! over at most `2t + 2b` base objects can make every READ fast (one
//! communication round-trip)**. The proof (Figure 1) builds five runs in
//! which forged object states make a post-write run (`run4`) and a
//! nothing-written run (`run5`) byte-identical to a concurrent run
//! (`run3`) from the reader's seat; one decision must serve all three, and
//! safety demands contradictory answers.
//!
//! This crate executes that construction against any implementation of
//! [`FastReadSpec`]:
//!
//! * [`execute_prop1`] assembles the common view at `S = 2t + 2b` and
//!   reports which safety clause the implementation's decision breaks —
//!   or that the implementation escapes by *not being fast*;
//! * [`execute_control`] repeats the construction at `S = 2t + 2b + 1`,
//!   where the extra correct object breaks indistinguishability and the
//!   masking rule decides both runs correctly — locating the boundary of
//!   Proposition 1 exactly.
//!
//! ```
//! use vrr_lowerbound::{execute_prop1, LitePairSpec, ReadRule, Verdict};
//!
//! let (t, b) = (1, 1);
//! let spec = LitePairSpec::new(2 * t + 2 * b, t, b, ReadRule::Masking);
//! let report = execute_prop1(&spec, b, 42);
//! assert!(report.verdict.is_violation());
//! ```

#![warn(missing_docs)]

mod diagram;
mod runs;
mod spec;
mod strawmen;

pub use diagram::{render_all, render_run, Run};
pub use runs::{execute_control, execute_prop1, ControlReport, Prop1Report, Verdict};
pub use spec::{BlockPartition, FastReadSpec};
pub use strawmen::{GossipPairSpec, LitePairSpec, ReadRule};
