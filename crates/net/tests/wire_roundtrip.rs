//! Wire round-trip property tests: every `Msg` variant, every client
//! protocol frame, and the envelope framing itself survive
//! encode → (arbitrary re-chunking) → decode bit-exactly.
//!
//! Values are generated from a per-case seed with a local SplitMix64, so
//! each of the 256 cases exercises *all* message variants (not a random
//! subset), including degenerate sizes (empty histories, `None` values)
//! and the PR 4 reader-ack field on `Msg::Read`.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vrr_core::wire::{decode_exact, Wire};
use vrr_core::{HistEntry, History, Msg, ReadRound, Timestamp, TsVal, TsrMatrix, WTuple};
use vrr_net::frame::{
    decode_body, encode_frame, Ctl, Envelope, FrameReader, Op, Payload, Rsp, CLIENT_NODE,
};

/// SplitMix64 — deterministic per-case structure generator.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn arb_ts(g: &mut Gen) -> Timestamp {
    // Mix tiny, mid and extreme timestamps.
    match g.below(4) {
        0 => Timestamp(g.below(8)),
        1 => Timestamp(g.next()),
        2 => Timestamp(u64::MAX),
        _ => Timestamp::ZERO,
    }
}

fn arb_tsval(g: &mut Gen) -> TsVal<u64> {
    if g.below(4) == 0 {
        TsVal::bottom()
    } else {
        TsVal::new(arb_ts(g), g.next())
    }
}

fn arb_matrix(g: &mut Gen) -> TsrMatrix {
    let mut m = TsrMatrix::empty();
    for i in 0..g.below(4) as usize {
        let mut row = BTreeMap::new();
        for j in 0..g.below(4) as usize {
            row.insert(j, g.next());
        }
        m.set_row(i, row);
    }
    m
}

fn arb_wtuple(g: &mut Gen) -> WTuple<u64> {
    WTuple::new(arb_tsval(g), arb_matrix(g))
}

fn arb_entry(g: &mut Gen) -> HistEntry<u64> {
    HistEntry {
        pw: arb_tsval(g),
        w: if g.below(3) == 0 {
            None
        } else {
            Some(arb_wtuple(g))
        },
    }
}

fn arb_history(g: &mut Gen) -> History<u64> {
    let mut h = if g.below(2) == 0 {
        History::empty()
    } else {
        History::initial()
    };
    for _ in 0..g.below(6) {
        h.insert(arb_ts(g), arb_entry(g));
    }
    h
}

/// One message of the variant with wire tag `tag` (0..=6).
fn arb_msg(tag: u8, g: &mut Gen) -> Msg<u64> {
    match tag {
        0 => Msg::Pw {
            ts: arb_ts(g),
            pw: arb_tsval(g),
            w: arb_wtuple(g),
        },
        1 => Msg::PwAck {
            ts: arb_ts(g),
            tsr: (0..g.below(5) as usize).map(|j| (j, g.next())).collect(),
        },
        2 => Msg::W {
            ts: arb_ts(g),
            pw: arb_tsval(g),
            w: arb_wtuple(g),
        },
        3 => Msg::WAck { ts: arb_ts(g) },
        4 => Msg::Read {
            round: if g.below(2) == 0 {
                ReadRound::R1
            } else {
                ReadRound::R2
            },
            reader: g.below(64) as usize,
            tsr: g.next(),
            since: if g.below(2) == 0 {
                None
            } else {
                Some(arb_ts(g))
            },
            // The PR 4 history-GC ack: must survive the wire untouched.
            ack: arb_ts(g),
        },
        5 => Msg::ReadAckSafe {
            round: if g.below(2) == 0 {
                ReadRound::R1
            } else {
                ReadRound::R2
            },
            tsr: g.next(),
            pw: arb_tsval(g),
            w: arb_wtuple(g),
        },
        6 => Msg::ReadAckRegular {
            round: if g.below(2) == 0 {
                ReadRound::R1
            } else {
                ReadRound::R2
            },
            tsr: g.next(),
            history: arb_history(g),
        },
        _ => unreachable!("7 Msg variants"),
    }
}

fn arb_string(g: &mut Gen) -> String {
    (0..g.below(40))
        .map(|_| char::from(b' ' + (g.below(94) as u8)))
        .collect()
}

fn arb_op(tag: u8, g: &mut Gen) -> Op<u64> {
    match tag {
        0 => Op::Ping,
        1 => Op::WriteSlot {
            slot: g.next() as u32,
            value: g.next(),
        },
        2 => Op::ReadSlot {
            slot: g.next() as u32,
            reader: g.next() as u32,
        },
        3 => Op::CrashPid { pid: g.next() },
        4 => Op::Metrics,
        5 => Op::ResetPeer {
            node: g.next() as u32,
        },
        6 => Op::EchoHistory {
            history: arb_history(g),
        },
        7 => Op::Shutdown,
        _ => unreachable!("8 Op variants"),
    }
}

fn arb_rsp(tag: u8, g: &mut Gen) -> Rsp<u64> {
    match tag {
        0 => Rsp::Pong,
        1 => Rsp::Wrote {
            ts: arb_ts(g),
            rounds: g.below(3) as u32,
        },
        2 => Rsp::ReadOk {
            value: if g.below(2) == 0 {
                None
            } else {
                Some(g.next())
            },
            ts: arb_ts(g),
            rounds: g.below(3) as u32,
            fast: g.below(2) == 0,
        },
        3 => Rsp::Crashed,
        4 => Rsp::MetricsText {
            text: arb_string(g),
        },
        5 => Rsp::PeerReset {
            closed: g.next() as u32,
        },
        6 => Rsp::History {
            history: arb_history(g),
        },
        7 => Rsp::ShuttingDown,
        8 => Rsp::Err {
            what: arb_string(g),
        },
        _ => unreachable!("9 Rsp variants"),
    }
}

fn assert_roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_wire_vec();
    let back: T = decode_exact(&bytes).expect("decodes");
    assert_eq!(&back, v);
}

/// Frames `env` and replays its bytes through a [`FrameReader`] in
/// `g`-chosen chunk sizes (1..=17 bytes), as a socket might deliver them.
fn assert_framed_roundtrip(env: &Envelope<u64>, g: &mut Gen) {
    let frame = encode_frame(env);
    let mut r = FrameReader::new();
    let mut fed = 0;
    let mut got = None;
    while fed < frame.len() {
        let chunk = (1 + g.below(17) as usize).min(frame.len() - fed);
        r.extend(&frame[fed..fed + chunk]);
        fed += chunk;
        if let Some(body) = r.next_frame().expect("well-formed frame") {
            got = Some(body);
        }
    }
    let body = got.expect("frame completes once all bytes arrive");
    assert_eq!(&decode_body::<u64>(&body).expect("body decodes"), env);
    assert!(r.next_frame().unwrap().is_none());
    assert_eq!(r.pending(), 0, "no bytes left over");
}

proptest! {
    /// 256 seeds × all 7 protocol-message variants each.
    #[test]
    fn every_msg_variant_roundtrips(seed in any::<u64>()) {
        let mut g = Gen(seed);
        for tag in 0..7u8 {
            let msg = arb_msg(tag, &mut g);
            assert_roundtrip(&msg);
        }
    }

    /// 256 seeds × all 7 variants, wrapped in envelopes and re-chunked
    /// through the incremental frame reader.
    #[test]
    fn peer_envelopes_survive_rechunking(seed in any::<u64>()) {
        let mut g = Gen(seed);
        for tag in 0..7u8 {
            let env = Envelope {
                source: g.next() as u32,
                epoch: g.next() as u32,
                seq: g.next(),
                payload: Payload::Peer {
                    from: g.next(),
                    to: g.next(),
                    msg: arb_msg(tag, &mut g),
                },
            };
            assert_framed_roundtrip(&env, &mut g);
        }
    }

    /// 256 seeds × every client-protocol op and response variant.
    #[test]
    fn client_protocol_frames_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        for tag in 0..8u8 {
            let env = Envelope {
                source: CLIENT_NODE,
                epoch: 0,
                seq: g.next(),
                payload: Payload::Ctl(Ctl::Request { id: g.next(), op: arb_op(tag, &mut g) }),
            };
            assert_framed_roundtrip(&env, &mut g);
        }
        for tag in 0..9u8 {
            let env = Envelope {
                source: g.next() as u32,
                epoch: g.next() as u32,
                seq: g.next(),
                payload: Payload::Ctl(Ctl::Response { id: g.next(), rsp: arb_rsp(tag, &mut g) }),
            };
            assert_framed_roundtrip(&env, &mut g);
        }
        let hello = Envelope::<u64> {
            source: g.next() as u32,
            epoch: g.next() as u32,
            seq: g.next(),
            payload: Payload::Ctl(Ctl::Hello { node: g.next() as u32, epoch: g.next() as u32 }),
        };
        assert_framed_roundtrip(&hello, &mut g);
    }
}

/// Extreme-size values: everything pinned to its maximum.
#[test]
fn max_size_values_roundtrip() {
    let mut big_row = BTreeMap::new();
    for j in 0..32usize {
        big_row.insert(j, u64::MAX);
    }
    let mut matrix = TsrMatrix::empty();
    for i in 0..32usize {
        matrix.set_row(i, big_row.clone());
    }
    let mut history = History::initial();
    for k in 0..200u64 {
        history.insert(
            Timestamp(u64::MAX - k),
            HistEntry {
                pw: TsVal::new(Timestamp(u64::MAX), u64::MAX),
                w: Some(WTuple::new(
                    TsVal::new(Timestamp(u64::MAX), u64::MAX),
                    matrix.clone(),
                )),
            },
        );
    }
    let msg = Msg::ReadAckRegular {
        round: ReadRound::R2,
        tsr: u64::MAX,
        history: history.clone(),
    };
    assert_roundtrip(&msg);

    let read = Msg::<u64>::Read {
        round: ReadRound::R2,
        reader: usize::MAX >> 1,
        tsr: u64::MAX,
        since: Some(Timestamp(u64::MAX)),
        ack: Timestamp(u64::MAX),
    };
    assert_roundtrip(&read);

    let rsp = Rsp::<u64>::History { history };
    assert_roundtrip(&rsp);

    let text = Rsp::<u64>::MetricsText {
        text: "métrique\u{1F680}".repeat(2_000),
    };
    assert_roundtrip(&text);
}

/// The reader-ack GC field is encoded distinctly (not aliased with any
/// neighbouring field).
#[test]
fn read_ack_field_is_independent() {
    let base = Msg::<u64>::Read {
        round: ReadRound::R1,
        reader: 3,
        tsr: 9,
        since: None,
        ack: Timestamp(5),
    };
    let mut other = base.clone();
    if let Msg::Read { ack, .. } = &mut other {
        *ack = Timestamp(6);
    }
    assert_ne!(base.to_wire_vec(), other.to_wire_vec());
    let back: Msg<u64> = decode_exact(&other.to_wire_vec()).unwrap();
    assert!(matches!(back, Msg::Read { ack, .. } if ack == Timestamp(6)));
}
