//! **B-SCALE** — multi-cluster scale-out under skewed load.
//!
//! The paper's registers are per-key protocols with no cross-register
//! coordination, so aggregate throughput should grow with the number of
//! independent shard-clusters behind a [`StoreRouter`]. Two groups:
//!
//! * `scaleout/zipfian/clusters/{1,2,4}` — a fixed YCSB-style Zipfian
//!   workload (θ = 0.99, multi-threaded clients, 50/50 write/read) pushed
//!   through routers with 1, 2 and 4 shard-clusters. The shape to check:
//!   per-iteration cost is monotonically non-increasing in cluster count
//!   (more independent worker pools never hurt; on multi-core hosts they
//!   help near-linearly).
//! * `scaleout/router-overhead/{direct,routed,remote}` — the same
//!   single-cluster workload against a bare [`ShardedStore`], through the
//!   router, and through a router whose only cluster is a
//!   [`RemoteCluster`] driving a store-hosting node over real localhost
//!   TCP. The in-proc routing step must cost ≤ 15% on top of direct
//!   access, and the socket-backed router may only ever cost *more* than
//!   the in-proc one (frames, syscalls and a reactor hop per op).
//!
//! Committed baseline: `BENCH_scaleout.json`; relations enforced by
//! `bench_shape`.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use vrr_core::StorageConfig;
use vrr_net::{
    free_addrs, GroupPlacement, NetNode, NetNodeConfig, NodeTopology, RemoteCluster,
    RemoteClusterConfig, RetryPolicy, StoreSpec,
};
use vrr_runtime::{ClusterBackend, NoDelay, ProtocolKind, RouterConfig, ShardedStore, StoreRouter};
use vrr_workload::ZipfianKeys;

/// Distinct keys in the workload (the Zipfian key space).
const KEYS: u64 = 48;
/// Concurrent client threads per iteration.
const CLIENTS: u64 = 4;
/// Operations per client per iteration (alternating write/read).
const OPS_PER_CLIENT: u64 = 64;

fn deploy_router(clusters: usize) -> StoreRouter<u64, u64> {
    let cfg = StorageConfig::optimal(1, 1, 1);
    let router = StoreRouter::deploy(
        cfg,
        ProtocolKind::RegularOptimized,
        RouterConfig::new(clusters, KEYS as usize).with_seed(42),
    );
    // Pre-bind every key so iterations measure steady-state operations,
    // not first-write shard binding.
    for k in 0..KEYS {
        router.write(k, 0);
    }
    router
}

/// One client's worth of skewed operations, deterministic per seed.
fn client_ops(seed: u64, mut write: impl FnMut(u64, u64), mut read: impl FnMut(u64)) {
    let mut zipf = ZipfianKeys::ycsb(KEYS, seed);
    for i in 0..OPS_PER_CLIENT {
        let key = zipf.next_scrambled();
        if i % 2 == 0 {
            write(key, i);
        } else {
            read(key);
        }
    }
}

fn run_router_clients(router: &StoreRouter<u64, u64>) {
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                client_ops(
                    c,
                    |k, v| {
                        router.write(k, v);
                    },
                    |k| {
                        router.read(&k, 0);
                    },
                );
            });
        }
    });
}

fn run_store_clients(store: &ShardedStore<u64, u64>) {
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                client_ops(
                    c,
                    |k, v| {
                        store.write(k, v);
                    },
                    |k| {
                        store.read(&k, 0);
                    },
                );
            });
        }
    });
}

fn bench_zipfian_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaleout/zipfian");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(5));
    for clusters in [1usize, 2, 4] {
        group.throughput(Throughput::Elements(CLIENTS * OPS_PER_CLIENT));
        let router = deploy_router(clusters);
        group.bench_function(BenchmarkId::new("clusters", clusters), |b| {
            b.iter(|| run_router_clients(&router));
        });
        drop(router);
    }
    group.finish();
}

fn bench_router_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaleout/router-overhead");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(5));
    group.throughput(Throughput::Elements(CLIENTS * OPS_PER_CLIENT));

    let cfg = StorageConfig::optimal(1, 1, 1);
    let store: ShardedStore<u64, u64> = ShardedStore::deploy(
        cfg,
        ProtocolKind::RegularOptimized,
        Box::new(NoDelay),
        KEYS as usize,
    );
    for k in 0..KEYS {
        store.write(k, 0);
    }
    group.bench_function(BenchmarkId::new("direct", 1usize), |b| {
        b.iter(|| run_store_clients(&store));
    });
    drop(store);

    let router = deploy_router(1);
    group.bench_function(BenchmarkId::new("routed", 1usize), |b| {
        b.iter(|| run_router_clients(&router));
    });
    drop(router);

    // Same workload once more, with the single cluster behind real
    // localhost TCP: a store-hosting node in this process (vrr-net is a
    // dev-dependency) driven through a RemoteCluster connection pool.
    let node = {
        let addrs = free_addrs(1).expect("reserve port");
        let topo = NodeTopology {
            addrs,
            placement: GroupPlacement::single(0, cfg),
            slots: 1,
        };
        let mut ncfg = NetNodeConfig::<u64>::new(cfg, ProtocolKind::RegularOptimized);
        ncfg.store = Some(StoreSpec::new(KEYS as usize));
        NetNode::start(0, &topo, ncfg).expect("start store node")
    };
    let backend: Arc<dyn ClusterBackend<u64, u64>> = Arc::new(
        RemoteCluster::<u64, u64>::connect(
            node.addr(),
            RemoteClusterConfig::new(CLIENTS as usize, RetryPolicy::with_seed(42)),
        )
        .expect("connect remote cluster"),
    );
    let remote_router: StoreRouter<u64, u64> = StoreRouter::deploy_with_backends(
        RouterConfig::new(1, KEYS as usize).with_seed(42),
        move |_| backend.clone(),
    );
    for k in 0..KEYS {
        remote_router.write(k, 0);
    }
    group.bench_function(BenchmarkId::new("remote", 1usize), |b| {
        b.iter(|| run_router_clients(&remote_router));
    });
    drop(remote_router);
    drop(node);

    group.finish();
}

criterion_group!(benches, bench_zipfian_scaling, bench_router_overhead);
criterion_main!(benches);
